package fault

import (
	"testing"

	"learn2scale/internal/topology"
)

// checkRoutes verifies every up*/down* invariant over all (src, dst)
// pairs of the routing function: reachability must equal undirected
// connectivity of the surviving graph, and every path must walk live
// links between alive routers, never move up after moving down, and
// never revisit a (node, downPhase) state (the termination guarantee
// deadlock-freedom rests on). Shared with FuzzFaultedRoute.
func checkRoutes(t testing.TB, m topology.Mesh, r *Routes) {
	n := m.Nodes()
	comp := components(m, r)
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			connected := r.Alive(src) && r.Alive(dst) && comp[src] == comp[dst]
			if src == dst {
				if got := r.Reachable(src, dst); got != r.Alive(src) {
					t.Fatalf("Reachable(%d, %d) = %v with alive=%v", src, dst, got, r.Alive(src))
				}
				continue
			}
			if got := r.Reachable(src, dst); got != connected {
				t.Fatalf("Reachable(%d, %d) = %v, undirected connectivity says %v",
					src, dst, got, connected)
			}
			if !connected {
				if _, ok := r.Path(src, dst); ok {
					t.Fatalf("Path(%d, %d) exists but nodes are disconnected", src, dst)
				}
				continue
			}
			walkPath(t, m, r, src, dst)
		}
	}
}

// walkPath follows the next-hop tables from src to dst, checking each
// hop's legality. It bounds the walk at 2n states — the (node, phase)
// state space — so a routing cycle fails fast instead of hanging.
func walkPath(t testing.TB, m topology.Mesh, r *Routes, src, dst int) {
	n := m.Nodes()
	seen := make(map[[2]int]bool, 2*n)
	cur, down := src, false
	for steps := 0; cur != dst; steps++ {
		if steps > 2*n {
			t.Fatalf("path %d→%d did not terminate within %d hops", src, dst, 2*n)
		}
		state := [2]int{cur, b2i(down)}
		if seen[state] {
			t.Fatalf("path %d→%d revisits node %d in phase %d", src, dst, cur, b2i(down))
		}
		seen[state] = true
		d, isDown, ok := r.NextDir(cur, dst, down)
		if !ok {
			t.Fatalf("path %d→%d stuck at node %d phase %d", src, dst, cur, b2i(down))
		}
		if !r.LinkLive(cur, d) {
			t.Fatalf("path %d→%d crosses dead link at node %d dir %v", src, dst, cur, d)
		}
		next := Neighbor(m, cur, d)
		if next < 0 || !r.Alive(next) {
			t.Fatalf("path %d→%d enters dead router from node %d dir %v", src, dst, cur, d)
		}
		up := r.Up(cur, next)
		if down && up {
			t.Fatalf("path %d→%d moves up at node %d after moving down", src, dst, cur)
		}
		if isDown != !up {
			t.Fatalf("path %d→%d: NextDir says isDown=%v but orientation says up=%v",
				src, dst, isDown, up)
		}
		if isDown {
			down = true
		}
		cur = next
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// components labels the connected components of the surviving
// undirected graph (dead routers get -1), independently of the routing
// tables under test.
func components(m topology.Mesh, r *Routes) []int {
	n := m.Nodes()
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	next := 0
	for s := 0; s < n; s++ {
		if !r.Alive(s) || comp[s] >= 0 {
			continue
		}
		comp[s] = next
		queue := []int{s}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for d := Dir(0); d < numDirs; d++ {
				if !r.LinkLive(u, d) {
					continue
				}
				if v := Neighbor(m, u, d); comp[v] < 0 {
					comp[v] = next
					queue = append(queue, v)
				}
			}
		}
		next++
	}
	return comp
}

func TestRoutesFaultFreeMesh(t *testing.T) {
	m := topology.NewMesh(4, 4)
	r := MustRoutes(m, nil)
	checkRoutes(t, m, r)
	// Fault-free shortest paths: up*/down* distance equals hop distance
	// on a mesh rooted at node 0? Not in general — but the path length
	// must never be absurd. Check the bound |path| ≤ 2·diameter+1.
	for src := 0; src < m.Nodes(); src++ {
		for dst := 0; dst < m.Nodes(); dst++ {
			p, ok := r.Path(src, dst)
			if !ok {
				t.Fatalf("fault-free mesh: %d cannot reach %d", src, dst)
			}
			if len(p)-1 > 2*(m.W+m.H) {
				t.Errorf("path %d→%d has %d hops on a 4x4 mesh", src, dst, len(p)-1)
			}
		}
	}
}

func TestRoutesDeadLink(t *testing.T) {
	m := topology.NewMesh(4, 4)
	cfg := &Config{DeadLinks: []Link{{A: 5, B: 6}, {A: 1, B: 2}}}
	r, err := NewRoutes(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkRoutes(t, m, r)
	// Both cut links sit on the same column boundary, but rows 2-3
	// still connect the halves: everything stays reachable.
	for src := 0; src < m.Nodes(); src++ {
		for dst := 0; dst < m.Nodes(); dst++ {
			if !r.Reachable(src, dst) {
				t.Errorf("%d→%d unreachable despite a connected survivor graph", src, dst)
			}
		}
	}
	// The dead link must never be crossed.
	p, _ := r.Path(5, 6)
	for i := 0; i+1 < len(p); i++ {
		if LinkBetween(p[i], p[i+1]) == (Link{A: 5, B: 6}) {
			t.Errorf("path 5→6 crosses the dead link: %v", p)
		}
	}
}

func TestRoutesDeadRouter(t *testing.T) {
	m := topology.NewMesh(4, 4)
	r := MustRoutes(m, &Config{DeadRouters: []int{5}})
	checkRoutes(t, m, r)
	for other := 0; other < m.Nodes(); other++ {
		if other == 5 {
			continue
		}
		if r.Reachable(5, other) || r.Reachable(other, 5) {
			t.Errorf("dead router 5 still reachable to/from %d", other)
		}
	}
}

func TestRoutesDisconnection(t *testing.T) {
	// Cut the full column boundary between x=0 and x=1 on a 2-wide
	// mesh: the two columns become separate components.
	m := topology.NewMesh(2, 3)
	cfg := &Config{DeadLinks: []Link{{A: 0, B: 1}, {A: 2, B: 3}, {A: 4, B: 5}}}
	r := MustRoutes(m, cfg)
	checkRoutes(t, m, r)
	if r.Reachable(0, 1) {
		t.Error("severed columns still reachable")
	}
	if !r.Reachable(0, 4) || !r.Reachable(1, 5) {
		t.Error("intra-column routes lost")
	}
}

func TestRoutesDeterministic(t *testing.T) {
	m := topology.NewMesh(4, 4)
	cfg := StructuralScenario(m, 0.5, 3)
	a := MustRoutes(m, cfg)
	b := MustRoutes(m, cfg)
	for src := 0; src < m.Nodes(); src++ {
		for dst := 0; dst < m.Nodes(); dst++ {
			pa, oka := a.Path(src, dst)
			pb, okb := b.Path(src, dst)
			if oka != okb {
				t.Fatalf("reachability of %d→%d differs across builds", src, dst)
			}
			for i := range pa {
				if pa[i] != pb[i] {
					t.Fatalf("path %d→%d differs across builds: %v vs %v", src, dst, pa, pb)
				}
			}
		}
	}
}

func TestNeighbor(t *testing.T) {
	m := topology.NewMesh(3, 2)
	cases := []struct {
		id   int
		d    Dir
		want int
	}{
		{0, DirEast, 1}, {0, DirWest, -1}, {0, DirNorth, -1}, {0, DirSouth, 3},
		{4, DirEast, 5}, {4, DirWest, 3}, {4, DirNorth, 1}, {4, DirSouth, -1},
	}
	for _, c := range cases {
		if got := Neighbor(m, c.id, c.d); got != c.want {
			t.Errorf("Neighbor(%d, %v) = %d, want %d", c.id, c.d, got, c.want)
		}
	}
}
