package fault

import (
	"fmt"

	"learn2scale/internal/topology"
)

// Dir is a mesh link direction. The order matches internal/noc's
// output ports (East, West, North, South) so the simulator can map a
// Dir to its port index with a constant offset.
type Dir int

// Link directions, in deterministic tie-break order.
const (
	DirEast Dir = iota
	DirWest
	DirNorth
	DirSouth
	numDirs
)

func (d Dir) String() string {
	switch d {
	case DirEast:
		return "E"
	case DirWest:
		return "W"
	case DirNorth:
		return "N"
	case DirSouth:
		return "S"
	}
	return fmt.Sprintf("Dir(%d)", int(d))
}

// Neighbor returns the node reached from id in direction d, or -1 off
// the mesh edge.
func Neighbor(m topology.Mesh, id int, d Dir) int {
	c := m.Coord(id)
	switch d {
	case DirEast:
		if c.X+1 < m.W {
			return id + 1
		}
	case DirWest:
		if c.X > 0 {
			return id - 1
		}
	case DirNorth:
		if c.Y > 0 {
			return id - m.W
		}
	case DirSouth:
		if c.Y+1 < m.H {
			return id + m.W
		}
	}
	return -1
}

const unreachable int32 = 1 << 30

// Routes is the deterministic routing function of a mesh with
// structural faults: up*/down* routing over the surviving links.
//
// Every live link is oriented by a BFS spanning forest (the "up" end
// is the one closer to its component root; ties break toward the
// lower node id). A legal path traverses zero or more up moves
// followed by zero or more down moves — once a packet has moved down
// it never moves up again. The channel-dependency graph of such paths
// is acyclic (up moves strictly decrease the (level, id) key and down
// moves strictly increase it, and down→up transitions are forbidden),
// so the routing is deadlock-free for every dead-link/dead-router
// mask; FuzzFaultedRoute pins the invariant over arbitrary masks.
//
// On a fault-free mesh the simulator keeps its exact dimension-
// ordered XY routing; Routes is consulted only when the fault config
// is structural. The switch is all-or-nothing because mixing two
// individually deadlock-free routing functions can deadlock.
type Routes struct {
	mesh  topology.Mesh
	alive []bool           // router alive
	live  [][numDirs]bool  // live[node][dir]: link exists and is not dead
	level []int32          // BFS level from component root (-1 dead router)

	// next[phase][cur*n+dst] is the direction of the next hop for a
	// packet at cur heading to dst (phase 1 once it has moved down);
	// -1 when dst is unreachable from cur (or cur == dst).
	next [2][]int8
	// down[phase][cur*n+dst]: the stored hop is a down move.
	down [2][]bool
	dist [2][]int32
}

// NewRoutes builds the routing function for the mesh under cfg's
// structural faults. A nil cfg (or one with no dead links/routers)
// yields routes over the full mesh.
func NewRoutes(m topology.Mesh, cfg *Config) (*Routes, error) {
	if err := cfg.Validate(m); err != nil {
		return nil, err
	}
	n := m.Nodes()
	r := &Routes{
		mesh:  m,
		alive: make([]bool, n),
		live:  make([][numDirs]bool, n),
		level: make([]int32, n),
	}
	for i := range r.alive {
		r.alive[i] = true
	}
	if cfg != nil {
		for _, dr := range cfg.DeadRouters {
			r.alive[dr] = false
		}
	}
	dead := map[Link]bool{}
	if cfg != nil {
		for _, l := range cfg.DeadLinks {
			dead[l] = true
		}
	}
	for id := 0; id < n; id++ {
		for d := Dir(0); d < numDirs; d++ {
			nb := Neighbor(m, id, d)
			if nb < 0 || !r.alive[id] || !r.alive[nb] || dead[LinkBetween(id, nb)] {
				continue
			}
			r.live[id][d] = true
		}
	}
	r.assignLevels()
	r.buildTables()
	return r, nil
}

// MustRoutes is NewRoutes that panics on invalid config.
func MustRoutes(m topology.Mesh, cfg *Config) *Routes {
	r, err := NewRoutes(m, cfg)
	if err != nil {
		panic(err)
	}
	return r
}

// assignLevels runs BFS over the live undirected graph, one spanning
// tree per connected component, rooted at the component's lowest id.
func (r *Routes) assignLevels() {
	n := r.mesh.Nodes()
	for i := range r.level {
		r.level[i] = -1
	}
	queue := make([]int, 0, n)
	for root := 0; root < n; root++ {
		if !r.alive[root] || r.level[root] >= 0 {
			continue
		}
		r.level[root] = 0
		queue = append(queue[:0], root)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for d := Dir(0); d < numDirs; d++ {
				if !r.live[u][d] {
					continue
				}
				v := Neighbor(r.mesh, u, d)
				if r.level[v] < 0 {
					r.level[v] = r.level[u] + 1
					queue = append(queue, v)
				}
			}
		}
	}
}

// Up reports whether moving from node a to adjacent node b is an "up"
// move under the spanning-forest orientation: toward the lower BFS
// level, ties toward the lower node id.
func (r *Routes) Up(a, b int) bool {
	if r.level[b] != r.level[a] {
		return r.level[b] < r.level[a]
	}
	return b < a
}

// buildTables computes, for every destination, the shortest legal
// up*/down* distance of every (node, phase) state by reverse BFS,
// then derives deterministic next hops by local argmin with the Dir
// order as tie-break.
func (r *Routes) buildTables() {
	n := r.mesh.Nodes()
	for p := 0; p < 2; p++ {
		r.next[p] = make([]int8, n*n)
		r.down[p] = make([]bool, n*n)
		r.dist[p] = make([]int32, n*n)
	}
	type state struct {
		node  int
		phase int
	}
	queue := make([]state, 0, 2*n)
	for dst := 0; dst < n; dst++ {
		dist := [2][]int32{
			r.dist[0][dst*n : (dst+1)*n],
			r.dist[1][dst*n : (dst+1)*n],
		}
		for p := 0; p < 2; p++ {
			for i := range dist[p] {
				dist[p][i] = unreachable
				r.next[p][dst*n+i] = -1
			}
		}
		if !r.alive[dst] {
			continue
		}
		dist[0][dst], dist[1][dst] = 0, 0
		queue = append(queue[:0], state{dst, 0}, state{dst, 1})
		for len(queue) > 0 {
			s := queue[0]
			queue = queue[1:]
			v := s.node
			// Relax predecessors u that can move u→v legally into
			// phase s.phase.
			for d := Dir(0); d < numDirs; d++ {
				if !r.live[v][d] {
					continue
				}
				u := Neighbor(r.mesh, v, d)
				up := r.Up(u, v) // the move u→v is an up move
				nd := dist[s.phase][v] + 1
				if up && s.phase == 0 {
					// u in phase 0 may move up into (v, 0).
					if nd < dist[0][u] {
						dist[0][u] = nd
						queue = append(queue, state{u, 0})
					}
				} else if !up && s.phase == 1 {
					// u in either phase may move down into (v, 1).
					if nd < dist[0][u] {
						dist[0][u] = nd
						queue = append(queue, state{u, 0})
					}
					if nd < dist[1][u] {
						dist[1][u] = nd
						queue = append(queue, state{u, 1})
					}
				}
			}
		}
		// Next hops: at (u, phase) pick the legal move minimizing the
		// successor state's distance; Dir order breaks ties.
		for u := 0; u < n; u++ {
			if u == dst || !r.alive[u] {
				continue
			}
			for p := 0; p < 2; p++ {
				if dist[p][u] >= unreachable {
					continue
				}
				best, bestDir, bestDown := unreachable, int8(-1), false
				for d := Dir(0); d < numDirs; d++ {
					if !r.live[u][d] {
						continue
					}
					v := Neighbor(r.mesh, u, d)
					up := r.Up(u, v)
					if p == 1 && up {
						continue
					}
					sp := 1
					if up {
						sp = 0
					}
					if cd := dist[sp][v] + 1; cd < best {
						best, bestDir, bestDown = cd, int8(d), !up
					}
				}
				r.next[p][dst*n+u] = bestDir
				r.down[p][dst*n+u] = bestDown
			}
		}
	}
}

// Alive reports whether node's router is alive.
func (r *Routes) Alive(node int) bool { return r.alive[node] }

// LinkLive reports whether the link leaving node in direction d is
// live (exists and is not dead, with both end routers alive).
func (r *Routes) LinkLive(node int, d Dir) bool { return r.live[node][d] }

// Reachable reports whether a packet injected at src can legally
// reach dst over the surviving network.
func (r *Routes) Reachable(src, dst int) bool {
	if src == dst {
		return r.alive[src]
	}
	n := r.mesh.Nodes()
	return r.alive[src] && r.alive[dst] && r.dist[0][dst*n+src] < unreachable
}

// NextDir returns the direction of the next hop for a packet at cur
// heading to dst, and whether that hop is a down move (after which
// the packet must set its down phase). ok is false when dst is
// unreachable from cur in the given phase, or cur == dst.
func (r *Routes) NextDir(cur, dst int, downPhase bool) (dir Dir, isDown bool, ok bool) {
	p := 0
	if downPhase {
		p = 1
	}
	n := r.mesh.Nodes()
	d := r.next[p][dst*n+cur]
	if d < 0 {
		return 0, false, false
	}
	return Dir(d), r.down[p][dst*n+cur], true
}

// Path returns the node sequence (src..dst inclusive) a packet
// follows, and whether dst is reachable at all. Used by tests and the
// fuzz target; the simulator walks the table hop by hop instead.
func (r *Routes) Path(src, dst int) ([]int, bool) {
	if !r.Reachable(src, dst) {
		return nil, false
	}
	path := []int{src}
	cur, down := src, false
	for cur != dst {
		d, isDown, ok := r.NextDir(cur, dst, down)
		if !ok {
			return nil, false // cannot happen when Reachable holds
		}
		cur = Neighbor(r.mesh, cur, d)
		if isDown {
			down = true
		}
		path = append(path, cur)
	}
	return path, true
}
