// Package dram models the LPDDR3 main-memory channel of the paper's
// platform (Table II: 1 channel, 1 rank, 4 banks, 1 GB) at the level
// the accelerator model needs: how many core cycles a contiguous
// streaming transfer takes, accounting for row activations, CAS
// latency, bank interleaving and channel bandwidth.
//
// Core cycles are 1 GHz; LPDDR3-1600 on a 32-bit channel delivers
// 6.4 GB/s peak, i.e. 6.4 bytes per core cycle.
package dram

import "fmt"

// Config describes the memory channel. Latencies are in core cycles.
type Config struct {
	Banks         int
	RowBytes      int     // row-buffer size per bank
	BytesPerCycle float64 // peak channel bandwidth per core cycle

	TRCD int // activate → column command
	TCAS int // column command → first data
	TRP  int // precharge
	TRAS int // minimum row-open time

	CapacityBytes int64
}

// DefaultConfig returns an LPDDR3-1600 channel per Table II.
func DefaultConfig() Config {
	return Config{
		Banks:         4,
		RowBytes:      4096,
		BytesPerCycle: 6.4,
		TRCD:          15,
		TCAS:          12,
		TRP:           15,
		TRAS:          34,
		CapacityBytes: 1 << 30, // 1 GB
	}
}

func (c Config) validate() error {
	if c.Banks <= 0 || c.RowBytes <= 0 || c.BytesPerCycle <= 0 {
		return fmt.Errorf("dram: invalid config %+v", c)
	}
	return nil
}

// Channel is a stateless timing model of one memory channel. (Row
// buffer state between queries is intentionally not retained: the
// accelerator model issues large streaming transfers whose cost is
// dominated by within-transfer behaviour.)
type Channel struct {
	cfg Config
}

// New creates a channel with cfg.
func New(cfg Config) (*Channel, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Channel{cfg: cfg}, nil
}

// MustNew is New that panics on config error.
func MustNew(cfg Config) *Channel {
	ch, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return ch
}

// Config returns the channel configuration.
func (ch *Channel) Config() Config { return ch.cfg }

// StreamCycles returns the core cycles to read (or write) a contiguous
// region of n bytes.
//
// The transfer opens ceil(n/RowBytes) rows. The first access pays the
// full tRP+tRCD+tCAS pipe; subsequent row activations overlap with
// data transfer thanks to bank interleaving, but can hide at most
// (Banks−1)/Banks of their cost — with B banks, every B-th activation
// serializes behind the shared command/data bus.
func (ch *Channel) StreamCycles(n int64) int64 {
	if n <= 0 {
		return 0
	}
	c := ch.cfg
	rows := (n + int64(c.RowBytes) - 1) / int64(c.RowBytes)
	transfer := int64(float64(n)/c.BytesPerCycle) + 1
	first := int64(c.TRP + c.TRCD + c.TCAS)
	// Activation cost of the remaining rows, with (Banks−1) of every
	// Banks activations hidden under the data stream.
	actEach := int64(c.TRCD + c.TRP)
	exposed := ((rows - 1) + int64(c.Banks) - 1) / int64(c.Banks) * actEach
	return first + transfer + exposed
}

// Bandwidth returns the effective bytes per cycle achieved for an
// n-byte streaming transfer (peak minus activation overheads).
func (ch *Channel) Bandwidth(n int64) float64 {
	cy := ch.StreamCycles(n)
	if cy == 0 {
		return 0
	}
	return float64(n) / float64(cy)
}
