package dram

import (
	"testing"
	"testing/quick"
)

func TestZeroBytesIsFree(t *testing.T) {
	ch := MustNew(DefaultConfig())
	if got := ch.StreamCycles(0); got != 0 {
		t.Errorf("StreamCycles(0) = %d", got)
	}
	if got := ch.StreamCycles(-5); got != 0 {
		t.Errorf("StreamCycles(-5) = %d", got)
	}
}

func TestSmallReadPaysFullLatency(t *testing.T) {
	cfg := DefaultConfig()
	ch := MustNew(cfg)
	got := ch.StreamCycles(64)
	min := int64(cfg.TRP + cfg.TRCD + cfg.TCAS)
	if got < min {
		t.Errorf("64B read = %d cycles, must be >= %d (row open + CAS)", got, min)
	}
	if got > min+20 {
		t.Errorf("64B read = %d cycles, too slow", got)
	}
}

func TestLargeStreamApproachesPeakBandwidth(t *testing.T) {
	cfg := DefaultConfig()
	ch := MustNew(cfg)
	const n = 8 << 20 // 8 MB
	bw := ch.Bandwidth(n)
	if bw > cfg.BytesPerCycle {
		t.Errorf("effective bandwidth %v exceeds peak %v", bw, cfg.BytesPerCycle)
	}
	if bw < 0.7*cfg.BytesPerCycle {
		t.Errorf("streaming bandwidth %v too far below peak %v", bw, cfg.BytesPerCycle)
	}
}

func TestMoreBanksHideMoreActivation(t *testing.T) {
	one := DefaultConfig()
	one.Banks = 1
	four := DefaultConfig()
	ch1 := MustNew(one)
	ch4 := MustNew(four)
	const n = 1 << 20
	if ch4.StreamCycles(n) >= ch1.StreamCycles(n) {
		t.Errorf("4 banks (%d) not faster than 1 bank (%d)",
			ch4.StreamCycles(n), ch1.StreamCycles(n))
	}
}

func TestBadConfigRejected(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("zero config must be rejected")
	}
	cfg := DefaultConfig()
	cfg.Banks = 0
	if _, err := New(cfg); err == nil {
		t.Error("zero banks must be rejected")
	}
}

// Property: StreamCycles is monotone non-decreasing in transfer size.
func TestQuickMonotone(t *testing.T) {
	ch := MustNew(DefaultConfig())
	f := func(a, b uint32) bool {
		x, y := int64(a%(1<<24)), int64(b%(1<<24))
		if x > y {
			x, y = y, x
		}
		return ch.StreamCycles(x) <= ch.StreamCycles(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: cycles are at least the pure-bandwidth floor.
func TestQuickBandwidthFloor(t *testing.T) {
	cfg := DefaultConfig()
	ch := MustNew(cfg)
	f := func(a uint32) bool {
		n := int64(a % (1 << 24))
		if n == 0 {
			return true
		}
		return float64(ch.StreamCycles(n)) >= float64(n)/cfg.BytesPerCycle
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
