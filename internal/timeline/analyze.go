package timeline

import (
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"
)

// Outcome is the terminal state of one packet attempt.
type Outcome uint8

// Attempt outcomes.
const (
	Delivered Outcome = iota
	Retransmitted
	LostOutcome
)

// Hop is one router traversal of a packet attempt's head flit.
type Hop struct {
	Node, Port, VC, Plane int
	Arrive                int64 // head flit buffered at this router
	VCAt                  int64 // downstream VC allocated
	Depart                int64 // switch won; flit left through Port
}

// Chain is the reconstructed lifecycle of one packet attempt: the
// per-hop trail of its head flit from source NI to destination
// ejection (or to the retransmission/loss that ended the attempt).
type Chain struct {
	Section, Packet, Attempt int
	Src, Dst, Flits          int
	Queued, Inject, Eject    int64
	Hops                     []Hop
	Outcome                  Outcome
}

// LinkHops returns the number of inter-router link traversals (mesh
// hop distance actually travelled).
func (c *Chain) LinkHops() int {
	if len(c.Hops) == 0 {
		return 0
	}
	return len(c.Hops) - 1
}

// Latency returns queue-entry-to-ejection cycles (0 if undelivered).
func (c *Chain) Latency() int64 {
	if c.Outcome != Delivered {
		return 0
	}
	return c.Eject - c.Queued
}

// Breakdown decomposes packet latency into its mechanistic parts, all
// in simulated cycles summed over the covered packets. The identity
//
//	Total = QueueWait + Pipeline + VCStall + SwitchStall + Wire + Serialization
//
// holds exactly (tested), so the shares answer "where inside the burst
// do cycles go": queueing (NI wait + VC/switch stalls), hop latency
// (pipeline + wire), or serialization (body flits streaming out).
type Breakdown struct {
	Packets       int
	QueueWait     int64 // NI queue entry → head flit injected
	Pipeline      int64 // mandatory router pipeline: hops × (Stages−1)
	VCStall       int64 // waiting for a free downstream VC beyond the pipeline
	SwitchStall   int64 // VC allocated → switch granted
	Wire          int64 // link traversals between routers (+1 ejection completion)
	Serialization int64 // head ejected → tail ejected (body flit streaming)
	Total         int64 // NI queue entry → tail ejected
	Hops          int64 // inter-router link traversals
}

// add accumulates one delivered chain, given the router pipeline depth.
func (b *Breakdown) add(c *Chain, stages int) {
	ps := int64(stages - 1)
	b.Packets++
	b.QueueWait += c.Inject - c.Queued
	var lastDepart int64
	for i := range c.Hops {
		h := &c.Hops[i]
		b.Pipeline += ps
		b.VCStall += h.VCAt - h.Arrive - ps
		b.SwitchStall += h.Depart - h.VCAt
		if i > 0 {
			b.Wire += h.Arrive - lastDepart
			b.Hops++
		}
		lastDepart = h.Depart
	}
	b.Wire++ // local ejection traversal completing the head flit
	b.Serialization += c.Eject - lastDepart - 1
	b.Total += c.Eject - c.Queued
}

// merge folds another breakdown in.
func (b *Breakdown) merge(o Breakdown) {
	b.Packets += o.Packets
	b.QueueWait += o.QueueWait
	b.Pipeline += o.Pipeline
	b.VCStall += o.VCStall
	b.SwitchStall += o.SwitchStall
	b.Wire += o.Wire
	b.Serialization += o.Serialization
	b.Total += o.Total
	b.Hops += o.Hops
}

// MeanHops returns link traversals per delivered packet.
func (b Breakdown) MeanHops() float64 {
	if b.Packets == 0 {
		return 0
	}
	return float64(b.Hops) / float64(b.Packets)
}

// MeanLatency returns mean queue-to-ejection cycles per packet.
func (b Breakdown) MeanLatency() float64 {
	if b.Packets == 0 {
		return 0
	}
	return float64(b.Total) / float64(b.Packets)
}

// share returns v as a percentage of the breakdown total.
func (b Breakdown) share(v int64) float64 {
	if b.Total == 0 {
		return 0
	}
	return 100 * float64(v) / float64(b.Total)
}

// LinkHeat is the aggregate busy time of one directed mesh link,
// summed over planes.
type LinkHeat struct {
	From, To, Dir int
	BusyCycles    int64 // Σ interval lengths across planes and sections
	Intervals     int
}

// SectionAnalysis summarizes one timeline section (one layer).
type SectionAnalysis struct {
	Index       int
	Label       string
	Start, Comm int64
	Breakdown   Breakdown
	Critical    *Chain // chain whose ejection bounds the burst; nil if no traffic

	chains []*Chain // all attempts, for histogramming
}

// Analysis is the full digest of one timeline, produced by Analyze.
type Analysis struct {
	Tool     string
	Meta     map[string]string
	Platform Platform

	Sections []SectionAnalysis
	Overall  Breakdown
	Links    []LinkHeat // sorted by decreasing busy cycles

	Retransmits   int // retransmission attempts scheduled
	LostPackets   int // attempts terminally lost in the network
	LostTransfers int // transfers never injected (dead/disconnected endpoints)
	ComputeCycles int64
	TotalCycles   int64 // end of the last section's span
}

// MeanHops returns link traversals per delivered packet over the run.
func (a *Analysis) MeanHops() float64 { return a.Overall.MeanHops() }

// HopHistogram counts delivered packets by link-hop distance; index i
// holds the packets that crossed exactly i links.
func (a *Analysis) HopHistogram() []int {
	var h []int
	for i := range a.Sections {
		c := a.Sections[i].chains
		for _, ch := range c {
			if ch.Outcome != Delivered {
				continue
			}
			n := ch.LinkHops()
			for len(h) <= n {
				h = append(h, 0)
			}
			h[n]++
		}
	}
	return h
}

// Analyze digests a parsed timeline: reconstructs every packet
// attempt's hop chain, decomposes latencies, finds each section's
// critical chain and aggregates per-link heat.
func Analyze(tl *Timeline) (*Analysis, error) {
	a := &Analysis{Tool: tl.Tool, Meta: tl.Meta, Platform: tl.Platform}
	stages := tl.Platform.Stages
	if stages <= 0 {
		stages = 1 // degrade gracefully: pipeline share folds into stalls
	}
	linkBusy := map[[2]int]*LinkHeat{} // (node, dir) → heat
	for _, sec := range tl.Sections {
		sa := SectionAnalysis{Index: sec.Index, Label: sec.Label, Start: sec.Start, Comm: sec.Comm}
		chains, err := buildChains(sec)
		if err != nil {
			return nil, err
		}
		for _, c := range chains {
			switch c.Outcome {
			case Delivered:
				sa.Breakdown.add(c, stages)
				if sa.Critical == nil || c.Eject > sa.Critical.Eject ||
					(c.Eject == sa.Critical.Eject && (c.Packet < sa.Critical.Packet ||
						(c.Packet == sa.Critical.Packet && c.Attempt < sa.Critical.Attempt))) {
					sa.Critical = c
				}
			case Retransmitted:
				a.Retransmits++
			case LostOutcome:
				if c.Packet < 0 {
					a.LostTransfers++
				} else {
					a.LostPackets++
				}
			}
		}
		for i := range sec.Events {
			e := &sec.Events[i]
			switch e.Kind {
			case KindLink:
				k := [2]int{int(e.Node), int(e.Port)}
				lh := linkBusy[k]
				if lh == nil {
					lh = &LinkHeat{From: int(e.Node), Dir: int(e.Port),
						To: tl.Platform.Neighbor(int(e.Node), int(e.Port))}
					linkBusy[k] = lh
				}
				lh.BusyCycles += e.End - e.Cycle
				lh.Intervals++
			case KindCompute:
				a.ComputeCycles += e.End - e.Cycle
			}
		}
		sa.chains = chains
		a.Overall.merge(sa.Breakdown)
		if end := sec.Start + sec.span(); end > a.TotalCycles {
			a.TotalCycles = end
		}
		a.Sections = append(a.Sections, sa)
	}
	for _, lh := range linkBusy {
		a.Links = append(a.Links, *lh)
	}
	sort.Slice(a.Links, func(i, j int) bool {
		if a.Links[i].BusyCycles != a.Links[j].BusyCycles {
			return a.Links[i].BusyCycles > a.Links[j].BusyCycles
		}
		if a.Links[i].From != a.Links[j].From {
			return a.Links[i].From < a.Links[j].From
		}
		return a.Links[i].Dir < a.Links[j].Dir
	})
	return a, nil
}

// buildChains reconstructs the packet-attempt chains of one section.
func buildChains(sec *Section) ([]*Chain, error) {
	type key struct{ pkt, att int32 }
	byKey := map[key]*Chain{}
	var chains []*Chain
	for i := range sec.Events {
		e := &sec.Events[i]
		switch e.Kind {
		case KindInject:
			c := &Chain{Section: sec.Index, Packet: int(e.Packet), Attempt: int(e.Attempt),
				Src: int(e.Src), Dst: int(e.Dst), Flits: int(e.Flits),
				Queued: e.Queued, Inject: e.Cycle,
				Hops: []Hop{{Node: int(e.Node), Arrive: e.Cycle}}}
			byKey[key{e.Packet, e.Attempt}] = c
			chains = append(chains, c)
		case KindArrive:
			c := byKey[key{e.Packet, e.Attempt}]
			if c == nil {
				return nil, fmt.Errorf("timeline: section %d: arrive for unknown packet %d/%d", sec.Index, e.Packet, e.Attempt)
			}
			c.Hops = append(c.Hops, Hop{Node: int(e.Node), Port: int(e.Port),
				VC: int(e.VC), Plane: int(e.Plane), Arrive: e.Cycle})
		case KindDepart:
			c := byKey[key{e.Packet, e.Attempt}]
			if c == nil {
				return nil, fmt.Errorf("timeline: section %d: depart for unknown packet %d/%d", sec.Index, e.Packet, e.Attempt)
			}
			h := &c.Hops[len(c.Hops)-1]
			if h.Node != int(e.Node) || h.Depart != 0 {
				return nil, fmt.Errorf("timeline: section %d: packet %d/%d departs node %d but last hop is node %d",
					sec.Index, e.Packet, e.Attempt, e.Node, h.Node)
			}
			h.Port = int(e.Port)
			h.VCAt = e.Queued
			h.Depart = e.Cycle
		case KindEject:
			c := byKey[key{e.Packet, e.Attempt}]
			if c == nil {
				return nil, fmt.Errorf("timeline: section %d: eject for unknown packet %d/%d", sec.Index, e.Packet, e.Attempt)
			}
			c.Eject = e.Cycle
			c.Outcome = Delivered
		case KindRetx:
			c := byKey[key{e.Packet, e.Attempt - 1}]
			if c == nil {
				return nil, fmt.Errorf("timeline: section %d: retx for unknown packet %d/%d", sec.Index, e.Packet, e.Attempt-1)
			}
			c.Outcome = Retransmitted
		case KindLost:
			if e.Packet < 0 {
				chains = append(chains, &Chain{Section: sec.Index, Packet: -1,
					Src: int(e.Src), Dst: int(e.Dst), Outcome: LostOutcome})
				continue
			}
			c := byKey[key{e.Packet, e.Attempt}]
			if c == nil {
				return nil, fmt.Errorf("timeline: section %d: lost for unknown packet %d/%d", sec.Index, e.Packet, e.Attempt)
			}
			c.Outcome = LostOutcome
		}
	}
	return chains, nil
}

// Neighbor returns the node reached from id through direction dir
// (1..4 = E/W/N/S) on the platform's mesh, or −1 off-mesh/unknown.
func (p Platform) Neighbor(id, dir int) int {
	if p.MeshW <= 0 || p.MeshH <= 0 {
		return -1
	}
	x, y := id%p.MeshW, id/p.MeshW
	switch dir {
	case 1: // east
		if x+1 < p.MeshW {
			return id + 1
		}
	case 2: // west
		if x > 0 {
			return id - 1
		}
	case 3: // north
		if y > 0 {
			return id - p.MeshW
		}
	case 4: // south
		if y+1 < p.MeshH {
			return id + p.MeshW
		}
	}
	return -1
}

// Format renders the analysis as a human-readable report: the overall
// latency decomposition, the per-section critical transfer chains and
// the top-n link heat table (LinkStats.TopN style).
func (a *Analysis) Format(topLinks int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "timeline: %s", a.Tool)
	for _, k := range sortedKeys(a.Meta) {
		fmt.Fprintf(&b, " %s=%s", k, a.Meta[k])
	}
	fmt.Fprintf(&b, "\n%d sections, %d packets delivered, %d retransmits, %d packets lost, %d transfers never injected\n",
		len(a.Sections), a.Overall.Packets, a.Retransmits, a.LostPackets, a.LostTransfers)
	fmt.Fprintf(&b, "span %d cycles (compute %d core-cycles recorded)\n\n", a.TotalCycles, a.ComputeCycles)

	b.WriteString(a.Overall.format("overall latency decomposition"))

	b.WriteString("\nper-layer critical transfer chain (bounds the burst drain):\n")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "  layer\tcomm cyc\tcritical transfer\thops\tlatency\tqueue\tstall\tserialize")
	for i := range a.Sections {
		sa := &a.Sections[i]
		if sa.Critical == nil {
			fmt.Fprintf(w, "  %s\t%d\t(no traffic)\t\t\t\t\t\n", sa.Label, sa.Comm)
			continue
		}
		c := sa.Critical
		var cb Breakdown
		stages := a.Platform.Stages
		if stages <= 0 {
			stages = 1
		}
		cb.add(c, stages)
		fmt.Fprintf(w, "  %s\t%d\t%d → %d (pkt %d)\t%d\t%d\t%d\t%d\t%d\n",
			sa.Label, sa.Comm, c.Src, c.Dst, c.Packet, c.LinkHops(), c.Latency(),
			cb.QueueWait, cb.VCStall+cb.SwitchStall, cb.Serialization)
	}
	w.Flush()

	if topLinks > 0 && len(a.Links) > 0 {
		var total int64
		for _, l := range a.Links {
			total += l.BusyCycles
		}
		fmt.Fprintf(&b, "\nlink heat (top %d of %d by busy cycles, total %d):\n", min(topLinks, len(a.Links)), len(a.Links), total)
		for _, l := range a.Links[:min(topLinks, len(a.Links))] {
			fmt.Fprintf(&b, "  %2d → %2d (%s): %d cycles over %d transfers\n",
				l.From, l.To, DirNames[l.Dir], l.BusyCycles, l.Intervals)
		}
		if rest := len(a.Links) - topLinks; rest > 0 {
			fmt.Fprintf(&b, "  (+%d more)\n", rest)
		}
	}
	return b.String()
}

// format renders one breakdown as a titled share table.
func (b Breakdown) format(title string) string {
	var s strings.Builder
	fmt.Fprintf(&s, "%s (%d packets, mean %.2f hops, mean latency %.1f cycles):\n",
		title, b.Packets, b.MeanHops(), b.MeanLatency())
	w := tabwriter.NewWriter(&s, 2, 4, 2, ' ', 0)
	row := func(name string, v int64) {
		fmt.Fprintf(w, "  %s\t%d\t%.1f%%\n", name, v, b.share(v))
	}
	row("queue wait (NI)", b.QueueWait)
	row("VC-alloc stall", b.VCStall)
	row("switch stall", b.SwitchStall)
	row("router pipeline", b.Pipeline)
	row("link wire", b.Wire)
	row("serialization", b.Serialization)
	fmt.Fprintf(w, "  total\t%d\t\n", b.Total)
	w.Flush()
	return s.String()
}

// FormatCompare renders several analyses side by side — the
// scheme-comparison view quantifying the paper's locality claim: the
// per-metric table plus a hop-distance histogram showing how SS_Mask
// shifts surviving traffic onto short mesh hops.
func FormatCompare(as []*Analysis, labels []string) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprint(w, "metric")
	for _, l := range labels {
		fmt.Fprintf(w, "\t%s", l)
	}
	fmt.Fprintln(w)
	row := func(name string, f func(a *Analysis) string) {
		fmt.Fprint(w, name)
		for _, a := range as {
			fmt.Fprintf(w, "\t%s", f(a))
		}
		fmt.Fprintln(w)
	}
	row("packets delivered", func(a *Analysis) string { return fmt.Sprint(a.Overall.Packets) })
	row("mean hop count", func(a *Analysis) string { return fmt.Sprintf("%.3f", a.MeanHops()) })
	row("mean latency (cyc)", func(a *Analysis) string { return fmt.Sprintf("%.1f", a.Overall.MeanLatency()) })
	row("queueing share", func(a *Analysis) string {
		return fmt.Sprintf("%.1f%%", a.Overall.share(a.Overall.QueueWait+a.Overall.VCStall+a.Overall.SwitchStall))
	})
	row("hop-latency share", func(a *Analysis) string {
		return fmt.Sprintf("%.1f%%", a.Overall.share(a.Overall.Pipeline+a.Overall.Wire))
	})
	row("serialization share", func(a *Analysis) string {
		return fmt.Sprintf("%.1f%%", a.Overall.share(a.Overall.Serialization))
	})
	row("retransmits", func(a *Analysis) string { return fmt.Sprint(a.Retransmits) })
	row("span (cycles)", func(a *Analysis) string { return fmt.Sprint(a.TotalCycles) })
	w.Flush()

	b.WriteString("\npackets by hop distance:\n")
	hists := make([][]int, len(as))
	maxH := 0
	for i, a := range as {
		hists[i] = a.HopHistogram()
		if len(hists[i]) > maxH {
			maxH = len(hists[i])
		}
	}
	hw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprint(hw, "  hops")
	for _, l := range labels {
		fmt.Fprintf(hw, "\t%s", l)
	}
	fmt.Fprintln(hw)
	for h := 0; h < maxH; h++ {
		fmt.Fprintf(hw, "  %d", h)
		for i := range hists {
			v := 0
			if h < len(hists[i]) {
				v = hists[i][h]
			}
			fmt.Fprintf(hw, "\t%d", v)
		}
		fmt.Fprintln(hw)
	}
	hw.Flush()
	return b.String()
}

func sortedKeys(m map[string]string) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
