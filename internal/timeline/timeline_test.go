package timeline

import (
	"bytes"
	"strings"
	"testing"
)

// TestNilSafety exercises every method on nil receivers: the disabled
// tracer must be inert, not crash.
func TestNilSafety(t *testing.T) {
	var sink *Sink
	sink.SetPlatform(Platform{MeshW: 4})
	if p := sink.Platform(); p != (Platform{}) {
		t.Fatalf("nil sink platform = %+v", p)
	}
	sec := sink.Section("x")
	if sec != nil {
		t.Fatalf("nil sink handed out a section")
	}
	if s := sink.Sections(); s != nil {
		t.Fatalf("nil sink has sections %v", s)
	}
	if n := sink.Events(); n != 0 {
		t.Fatalf("nil sink has %d events", n)
	}
	sink.resolveStarts()

	sec.SetStart(5)
	sec.SetComm(5)
	sec.Inject(1, 0, 0, 0, 0, 1, 2)
	sec.Arrive(2, 0, 0, 1, 1, 0, 0)
	sec.Depart(3, 3, 0, 0, 1, 0, 0)
	sec.Eject(4, 0, 0, 1)
	sec.Retx(4, 8, 0, 1, 1)
	sec.Lost(4, 0, 1, 1, 0, 1)
	sec.LinkBusy(0, 3, 0, 0, 1)
	sec.Compute(0, 9, 2)
}

// synthetic builds a two-section sink with one full packet lifecycle,
// a link interval and a compute span (platform: 2x1 mesh, 2-stage
// pipeline).
func synthetic() *Sink {
	sink := NewSink()
	sink.SetPlatform(Platform{MeshW: 2, MeshH: 1, Stages: 2, Planes: 1, VCs: 1, FlitBytes: 64, PacketFlits: 4})
	sink.SetPlatform(Platform{MeshW: 99}) // ignored: first writer wins

	a := sink.Section("layerA")
	// Packet 0: node 0 → node 1, queued at 0, injected at 2.
	a.Inject(2, 0, 0, 0, 0, 1, 3)
	a.Depart(4, 3, 0, 0, 0, PortEastDir, 0) // local hop: vc alloc at 3
	a.Arrive(5, 0, 0, 1, PortWestDir, 0, 0)
	a.Depart(7, 6, 0, 0, 1, 0, 0) // dst hop, local out
	a.Eject(10, 0, 0, 1)
	a.LinkBusy(4, 7, 0, 0, PortEastDir)
	a.Compute(12, 20, 1)
	a.SetComm(12)

	b := sink.Section("layerB")
	b.Compute(0, 4, 0)
	b.SetComm(0)
	return sink
}

// Direction constants for test readability (Port values of events).
const (
	PortEastDir = 1
	PortWestDir = 2
)

func TestSectionRegistrationAndStarts(t *testing.T) {
	sink := synthetic()
	secs := sink.Sections()
	if len(secs) != 2 || secs[0].Label != "layerA" || secs[1].Label != "layerB" ||
		secs[0].Index != 0 || secs[1].Index != 1 {
		t.Fatalf("sections = %+v", secs)
	}
	if p := sink.Platform(); p.MeshW != 2 || p.Stages != 2 {
		t.Fatalf("platform not first-writer-wins: %+v", p)
	}
	sink.resolveStarts()
	// layerA spans to cycle 20 (compute tail past comm=12), so layerB
	// stacks at 20.
	if secs[0].Start != 0 || secs[1].Start != 20 {
		t.Fatalf("starts = %d, %d", secs[0].Start, secs[1].Start)
	}
	// Pinned starts are kept.
	sink2 := synthetic()
	sink2.Sections()[1].SetStart(100)
	sink2.resolveStarts()
	if got := sink2.Sections()[1].Start; got != 100 {
		t.Fatalf("pinned start overridden: %d", got)
	}
}

func TestRecordRoundTripAndDeterminism(t *testing.T) {
	sink := synthetic()
	var buf1, buf2 bytes.Buffer
	meta := map[string]string{"scheme": "test", "cores": "2"}
	if err := sink.WriteRecord(&buf1, "unit", meta); err != nil {
		t.Fatal(err)
	}
	if err := sink.WriteRecord(&buf2, "unit", meta); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatalf("repeated WriteRecord not byte-identical")
	}

	tl, err := ReadRecord(bytes.NewReader(buf1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if tl.Tool != "unit" || tl.Meta["scheme"] != "test" {
		t.Fatalf("header round-trip: tool=%q meta=%v", tl.Tool, tl.Meta)
	}
	if tl.Platform != sink.Platform() {
		t.Fatalf("platform round-trip: %+v", tl.Platform)
	}
	if len(tl.Sections) != 2 {
		t.Fatalf("%d sections", len(tl.Sections))
	}
	orig := sink.Sections()
	for i, sec := range tl.Sections {
		if sec.Label != orig[i].Label || sec.Start != orig[i].Start || sec.Comm != orig[i].Comm {
			t.Fatalf("section %d header mismatch: %+v vs %+v", i, sec, orig[i])
		}
		if len(sec.Events) != len(orig[i].Events) {
			t.Fatalf("section %d: %d events, want %d", i, len(sec.Events), len(orig[i].Events))
		}
		for j := range sec.Events {
			if sec.Events[j] != orig[i].Events[j] {
				t.Fatalf("section %d event %d: %+v vs %+v", i, j, sec.Events[j], orig[i].Events[j])
			}
		}
	}

	// A parsed timeline re-renders identically through its Sink view.
	var buf3 bytes.Buffer
	if err := tl.Sink().WriteRecord(&buf3, "unit", meta); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf3.Bytes()) {
		t.Fatalf("record → Sink → record not idempotent")
	}
}

func TestReadRecordRejectsMalformed(t *testing.T) {
	good := func() string {
		var buf bytes.Buffer
		if err := synthetic().WriteRecord(&buf, "unit", nil); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}()
	cases := map[string]string{
		"empty":            "",
		"bad header":       "not json\n",
		"bad version":      strings.Replace(good, `"version":1`, `"version":9`, 1),
		"no tool":          strings.Replace(good, `"tool":"unit"`, `"tool":""`, 1),
		"truncated":        good[:len(good)/2],
		"trailing":         good + "{\"k\":\"inject\"}\n",
		"unknown kind":     strings.Replace(good, `"k":"eject"`, `"k":"warp"`, 1),
		"inverted span":    strings.Replace(good, `{"k":"compute","c":0,"e":4}`, `{"k":"compute","c":9,"e":4}`, 1),
		"non-monotone":     strings.Replace(good, `{"k":"eject","c":10,"n":1}`, `{"k":"eject","c":1,"n":1}`, 1),
		"section index":    strings.Replace(good, `{"index":1,`, `{"index":7,`, 1),
		"negative cycle":   strings.Replace(good, `{"k":"inject","c":2,`, `{"k":"inject","c":-2,`, 1),
	}
	for name, in := range cases {
		if _, err := ReadRecord(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := ReadRecord(strings.NewReader(good)); err != nil {
		t.Fatalf("good record rejected: %v", err)
	}
}

func TestAnalyzeBreakdownIdentity(t *testing.T) {
	sink := synthetic()
	var buf bytes.Buffer
	if err := sink.WriteRecord(&buf, "unit", nil); err != nil {
		t.Fatal(err)
	}
	tl, err := ReadRecord(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(tl)
	if err != nil {
		t.Fatal(err)
	}
	bd := a.Overall
	if bd.Packets != 1 {
		t.Fatalf("%d packets", bd.Packets)
	}
	// Queued 0, inject 2, eject 10 → total 10.
	if bd.Total != 10 {
		t.Fatalf("total = %d", bd.Total)
	}
	if sum := bd.QueueWait + bd.Pipeline + bd.VCStall + bd.SwitchStall + bd.Wire + bd.Serialization; sum != bd.Total {
		t.Fatalf("breakdown does not sum: %d != %d (%+v)", sum, bd.Total, bd)
	}
	// Stages=2: hop0 arrive 2, vc 3, depart 4 → pipeline 1, vc 0, sw 1.
	// hop1 arrive 5, vc 6, depart 7 → pipeline 1, vc 0, sw 1.
	if bd.QueueWait != 2 || bd.Pipeline != 2 || bd.VCStall != 0 || bd.SwitchStall != 2 {
		t.Fatalf("breakdown = %+v", bd)
	}
	// wire: 5−4 inter-router + 1 ejection = 2; serialization 10−7−1 = 2.
	if bd.Wire != 2 || bd.Serialization != 2 {
		t.Fatalf("wire/serialization = %d/%d", bd.Wire, bd.Serialization)
	}
	if bd.Hops != 1 || a.MeanHops() != 1 {
		t.Fatalf("hops = %d mean %.2f", bd.Hops, a.MeanHops())
	}
	if a.ComputeCycles != 8+4 {
		t.Fatalf("compute cycles = %d", a.ComputeCycles)
	}
	// layerA spans to 20, layerB starts at 20 and spans 4.
	if a.TotalCycles != 24 {
		t.Fatalf("total cycles = %d", a.TotalCycles)
	}
	crit := a.Sections[0].Critical
	if crit == nil || crit.Packet != 0 || crit.LinkHops() != 1 || crit.Latency() != 10 {
		t.Fatalf("critical = %+v", crit)
	}
	if len(a.Links) != 1 || a.Links[0].BusyCycles != 3 || a.Links[0].From != 0 || a.Links[0].To != 1 {
		t.Fatalf("links = %+v", a.Links)
	}
	if h := a.HopHistogram(); len(h) != 2 || h[1] != 1 {
		t.Fatalf("histogram = %v", h)
	}
}

func TestAnalyzeOutcomes(t *testing.T) {
	sink := NewSink()
	sink.SetPlatform(Platform{MeshW: 2, MeshH: 1, Stages: 2})
	sec := sink.Section("faulty")
	// Attempt 0 ends corrupt: full trail then retx scheduling attempt 1.
	sec.Inject(0, 0, 7, 0, 0, 1, 3)
	sec.Depart(1, 1, 7, 0, 0, PortEastDir, 0)
	sec.Arrive(2, 7, 0, 1, PortWestDir, 0, 0)
	sec.Depart(3, 3, 7, 0, 1, 0, 0)
	sec.Retx(6, 10, 7, 1, 1)
	// Attempt 1 delivered.
	sec.Inject(10, 10, 7, 1, 0, 1, 3)
	sec.Depart(11, 11, 7, 1, 0, PortEastDir, 0)
	sec.Arrive(12, 7, 1, 1, PortWestDir, 0, 0)
	sec.Depart(13, 13, 7, 1, 1, 0, 0)
	sec.Eject(16, 7, 1, 1)
	// Packet 8 lost terminally; transfer 0→1 never injected.
	sec.Inject(0, 0, 8, 0, 1, 0, 3)
	sec.Lost(4, 8, 0, 0, 1, 0)
	sec.Lost(0, -1, 0, 0, 0, 1)
	sec.SetComm(16)

	var buf bytes.Buffer
	if err := sink.WriteRecord(&buf, "unit", nil); err != nil {
		t.Fatal(err)
	}
	tl, err := ReadRecord(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(tl)
	if err != nil {
		t.Fatal(err)
	}
	if a.Overall.Packets != 1 || a.Retransmits != 1 || a.LostPackets != 1 || a.LostTransfers != 1 {
		t.Fatalf("outcomes: %d delivered, %d retx, %d lost, %d never injected",
			a.Overall.Packets, a.Retransmits, a.LostPackets, a.LostTransfers)
	}
	if crit := a.Sections[0].Critical; crit == nil || crit.Attempt != 1 {
		t.Fatalf("critical = %+v", crit)
	}
}

func TestNeighbor(t *testing.T) {
	p := Platform{MeshW: 3, MeshH: 2}
	cases := []struct{ id, dir, want int }{
		{0, 1, 1}, {2, 1, -1}, // east
		{1, 2, 0}, {0, 2, -1}, // west
		{3, 3, 0}, {0, 3, -1}, // north
		{0, 4, 3}, {3, 4, -1}, // south
		{0, 0, -1},
	}
	for _, c := range cases {
		if got := p.Neighbor(c.id, c.dir); got != c.want {
			t.Errorf("Neighbor(%d, %d) = %d, want %d", c.id, c.dir, got, c.want)
		}
	}
	if got := (Platform{}).Neighbor(0, 1); got != -1 {
		t.Errorf("zero platform neighbor = %d", got)
	}
}

func TestFormatReports(t *testing.T) {
	tlOf := func(s *Sink) *Timeline {
		var buf bytes.Buffer
		if err := s.WriteRecord(&buf, "unit", map[string]string{"scheme": "x"}); err != nil {
			t.Fatal(err)
		}
		tl, err := ReadRecord(&buf)
		if err != nil {
			t.Fatal(err)
		}
		return tl
	}
	a, err := Analyze(tlOf(synthetic()))
	if err != nil {
		t.Fatal(err)
	}
	out := a.Format(5)
	for _, want := range []string{"layerA", "critical transfer", "link heat", "serialization", "scheme=x"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
	cmp := FormatCompare([]*Analysis{a, a}, []string{"base", "mask"})
	for _, want := range []string{"mean hop count", "base", "mask", "packets by hop distance"} {
		if !strings.Contains(cmp, want) {
			t.Errorf("FormatCompare missing %q:\n%s", want, cmp)
		}
	}
}
