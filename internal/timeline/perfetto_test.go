package timeline

import (
	"bytes"
	"encoding/json"
	"testing"
)

// pfTrace mirrors the trace-event container for test-side parsing.
type pfTrace struct {
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData"`
	TraceEvents     []pfEvent      `json:"traceEvents"`
}

func TestWritePerfettoStructure(t *testing.T) {
	sink := synthetic()
	var buf1, buf2 bytes.Buffer
	meta := map[string]string{"scheme": "ssmask"}
	if err := sink.WritePerfetto(&buf1, "unit", meta); err != nil {
		t.Fatal(err)
	}
	if err := sink.WritePerfetto(&buf2, "unit", meta); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatalf("repeated WritePerfetto not byte-identical")
	}

	var tr pfTrace
	if err := json.Unmarshal(buf1.Bytes(), &tr); err != nil {
		t.Fatalf("perfetto output is not valid JSON: %v", err)
	}
	if tr.OtherData["tool"] != "unit" || tr.OtherData["scheme"] != "ssmask" {
		t.Fatalf("otherData = %v", tr.OtherData)
	}

	type track struct{ pid, tid int }
	depth := map[track]int{}     // open B/E nesting per track
	slices := map[track][]int64{} // X slice start stamps per track
	var prevTS int64
	var sawMeta, sawData bool
	procs := map[int]bool{}
	for i, e := range tr.TraceEvents {
		tk := track{e.Pid, e.Tid}
		switch e.Ph {
		case "M":
			if sawData {
				t.Fatalf("event %d: metadata after data events", i)
			}
			sawMeta = true
			if e.Name == "process_name" {
				procs[e.Pid] = true
			}
			continue
		case "B":
			depth[tk]++
		case "E":
			depth[tk]--
			if depth[tk] < 0 {
				t.Fatalf("event %d: E without B on pid=%d tid=%d", i, e.Pid, e.Tid)
			}
		case "X":
			if e.Dur < 0 {
				t.Fatalf("event %d: negative duration %d", i, e.Dur)
			}
			slices[tk] = append(slices[tk], e.TS)
		case "s", "t", "f":
			if e.ID == "" {
				t.Fatalf("event %d: flow without id", i)
			}
			// Flow must bind to an X slice starting at the same stamp on
			// the same track.
			found := false
			for _, ts := range slices[tk] {
				if ts == e.TS {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("event %d: flow %s at ts=%d pid=%d tid=%d resolves to no slice", i, e.ID, e.TS, e.Pid, e.Tid)
			}
		case "i":
		default:
			t.Fatalf("event %d: unknown phase %q", i, e.Ph)
		}
		sawData = true
		if e.TS < prevTS {
			t.Fatalf("event %d: ts %d after %d", i, e.TS, prevTS)
		}
		prevTS = e.TS
	}
	if !sawMeta || !procs[PidRouters] || !procs[PidLinks] || !procs[PidCores] {
		t.Fatalf("missing process metadata: %v", procs)
	}
	for tk, d := range depth {
		if d != 0 {
			t.Errorf("track pid=%d tid=%d left %d spans open", tk.pid, tk.tid, d)
		}
	}
	// synthetic's packet crosses 2 routers → one s + one f flow.
	var flows int
	for _, e := range tr.TraceEvents {
		if e.Ph == "s" || e.Ph == "t" || e.Ph == "f" {
			flows++
		}
	}
	if flows != 2 {
		t.Fatalf("%d flow events, want 2", flows)
	}
}

func TestLinkTid(t *testing.T) {
	seen := map[int]bool{}
	for node := 0; node < 4; node++ {
		for dir := 1; dir <= 4; dir++ {
			tid := LinkTid(node, dir)
			if seen[tid] {
				t.Fatalf("LinkTid(%d,%d)=%d collides", node, dir, tid)
			}
			seen[tid] = true
		}
	}
}
