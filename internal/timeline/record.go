package timeline

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// RecordVersion is the timeline-record schema version.
const RecordVersion = 1

// Header is the first line of a timeline record.
type Header struct {
	Version  int               `json:"version"`
	Tool     string            `json:"tool"`
	Meta     map[string]string `json:"meta,omitempty"`
	Platform Platform          `json:"platform"`
	Sections int               `json:"sections"`
}

// sectionHeader is the per-section line preceding its event lines.
type sectionHeader struct {
	Index  int    `json:"index"`
	Label  string `json:"label"`
	Start  int64  `json:"start"`
	Comm   int64  `json:"comm"`
	Stage  int    `json:"stage,omitempty"` // pipeline stage (0 in barrier runs)
	Batch  int    `json:"batch,omitempty"` // in-flight inference index
	Events int    `json:"events"`
}

// WriteRecord serializes the timeline as compact JSONL: a header line,
// then for each section (in registration order) one section line
// followed by its event lines in recorded order. Output is
// byte-deterministic: every stamp is a simulated cycle, maps marshal
// with sorted keys, and nothing depends on host scheduling.
func (t *Sink) WriteRecord(w io.Writer, tool string, meta map[string]string) error {
	t.resolveStarts()
	secs := t.Sections()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(Header{
		Version: RecordVersion, Tool: tool, Meta: meta,
		Platform: t.Platform(), Sections: len(secs),
	}); err != nil {
		return err
	}
	for _, s := range secs {
		if err := enc.Encode(sectionHeader{
			Index: s.Index, Label: s.Label, Start: s.Start, Comm: s.Comm,
			Stage: s.Stage, Batch: s.Batch, Events: len(s.Events),
		}); err != nil {
			return err
		}
		for i := range s.Events {
			if err := enc.Encode(&s.Events[i]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Timeline is a parsed timeline record — the analyzer's input.
type Timeline struct {
	Tool     string
	Meta     map[string]string
	Platform Platform
	Sections []*Section
}

// Sink reconstructs a sink view of the parsed timeline so it can be
// re-rendered (e.g. record → Perfetto conversion in l2s-trace).
func (t *Timeline) Sink() *Sink {
	s := &Sink{platform: t.Platform, platSet: true}
	s.sections = append(s.sections, t.Sections...)
	return s
}

// ReadRecord parses a timeline written by WriteRecord and validates
// its structural invariants: section indices dense and ordered,
// per-section event counts exact, interval events well-formed, and
// every packet attempt's lifecycle stamps monotone
// (inject ≤ departs/arrives ≤ eject).
func ReadRecord(r io.Reader) (*Timeline, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("timeline: empty record")
	}
	var h Header
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil {
		return nil, fmt.Errorf("timeline: decode header: %w", err)
	}
	if h.Version != RecordVersion {
		return nil, fmt.Errorf("timeline: record version %d, want %d", h.Version, RecordVersion)
	}
	if h.Tool == "" {
		return nil, fmt.Errorf("timeline: record has no tool name")
	}
	tl := &Timeline{Tool: h.Tool, Meta: h.Meta, Platform: h.Platform}
	for si := 0; si < h.Sections; si++ {
		if !sc.Scan() {
			return nil, fmt.Errorf("timeline: record truncated: %d of %d sections", si, h.Sections)
		}
		var sh sectionHeader
		if err := json.Unmarshal(sc.Bytes(), &sh); err != nil {
			return nil, fmt.Errorf("timeline: section %d: %w", si, err)
		}
		if sh.Index != si {
			return nil, fmt.Errorf("timeline: section %d has index %d", si, sh.Index)
		}
		sec := &Section{Index: sh.Index, Label: sh.Label, Start: sh.Start, Comm: sh.Comm,
			Stage: sh.Stage, Batch: sh.Batch, hasStart: true}
		sec.Events = make([]Event, 0, sh.Events)
		for ei := 0; ei < sh.Events; ei++ {
			if !sc.Scan() {
				return nil, fmt.Errorf("timeline: section %d truncated: %d of %d events", si, ei, sh.Events)
			}
			var e Event
			if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
				return nil, fmt.Errorf("timeline: section %d event %d: %w", si, ei, err)
			}
			sec.Events = append(sec.Events, e)
		}
		if err := validateSection(sec); err != nil {
			return nil, err
		}
		tl.Sections = append(tl.Sections, sec)
	}
	if sc.Scan() {
		return nil, fmt.Errorf("timeline: trailing data after %d sections", h.Sections)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("timeline: read record: %w", err)
	}
	return tl, nil
}

// validateSection checks one section's structural invariants.
func validateSection(s *Section) error {
	// last cycle stamp seen per (packet, attempt) lifecycle.
	type key struct{ pkt, att int32 }
	last := map[key]int64{}
	for i := range s.Events {
		e := &s.Events[i]
		switch e.Kind {
		case KindLink, KindCompute:
			if e.End < e.Cycle {
				return fmt.Errorf("timeline: section %d (%s): %s interval [%d,%d) inverted",
					s.Index, s.Label, e.Kind, e.Cycle, e.End)
			}
		case KindInject, KindArrive, KindDepart, KindEject, KindRetx:
			if e.Cycle < 0 {
				return fmt.Errorf("timeline: section %d (%s): %s at negative cycle %d",
					s.Index, s.Label, e.Kind, e.Cycle)
			}
			k := key{e.Packet, e.Attempt}
			if prev, ok := last[k]; ok && e.Cycle < prev {
				return fmt.Errorf("timeline: section %d (%s): packet %d attempt %d: %s at cycle %d after stamp %d",
					s.Index, s.Label, e.Packet, e.Attempt, e.Kind, e.Cycle, prev)
			}
			last[k] = e.Cycle
		case KindLost:
			// terminal; no ordering constraint beyond non-negative cycle
			if e.Cycle < 0 {
				return fmt.Errorf("timeline: section %d (%s): lost at negative cycle %d", s.Index, s.Label, e.Cycle)
			}
		default:
			return fmt.Errorf("timeline: section %d (%s): unknown event kind %q", s.Index, s.Label, e.Kind)
		}
	}
	return nil
}
