package timeline

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Process ids of the Perfetto export's track groups: one thread per
// router, per directed link, and per core.
const (
	PidRouters = 1
	PidLinks   = 2
	PidCores   = 3
	// PidStages appears only for pipelined runs (any section tagged with
	// a nonzero stage or batch): one thread per pipeline stage, an "X"
	// slice per section executed on it. The gaps between slices on a
	// stage thread are the pipeline bubbles.
	PidStages = 4
	// PidServe is reserved for the serving layer's wall-clock "serve
	// plane" (internal/serve.WriteServePerfetto): queue depth, batch
	// windows and per-request lifecycle slices, rendered as ExtraEvents
	// alongside the simulated-cycle tracks.
	PidServe = 5
)

// LinkTid returns the Perfetto thread id of the link leaving node
// through direction dir (1..4).
func LinkTid(node, dir int) int { return node*4 + dir - 1 }

// pfEvent is one Chrome trace-event. Timestamps are in microseconds;
// the export maps 1 simulated cycle to 1 µs so Perfetto's time ruler
// reads directly as cycles.
type pfEvent struct {
	Name string         `json:"name,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   string         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// ExtraEvent is one caller-supplied Chrome trace-event merged into a
// WritePerfettoExtra export: the hook higher layers (the serving
// plane) use to render their own processes next to the simulated-cycle
// tracks. Fields mirror the trace-event format; TS/Dur are in
// microseconds on the same ruler as the simulated cycles. Metadata
// events (Ph "M") are emitted in the header block; everything else is
// merged into the global timestamp sort.
type ExtraEvent struct {
	Name string
	Cat  string
	Ph   string
	TS   int64
	Dur  int64
	Pid  int
	Tid  int
	ID   string
	BP   string
	Args map[string]any
}

// WritePerfetto renders the timeline as Chrome trace-event JSON,
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing:
//
//   - process "routers": one thread per mesh router, an "X" slice per
//     hop a head flit spends buffered there (arrive → switch grant),
//     plus an ejection slice covering tail serialization, and instant
//     events for retransmissions and losses;
//   - process "links": one thread per directed mesh link, "B"/"E"
//     pairs bracketing each contiguous busy interval;
//   - process "cores": one thread per core, "B"/"E" pairs around each
//     layer's compute span;
//   - "s"/"t"/"f" flow arrows with one id per packet attempt stitch a
//     packet's hop slices into a visible chain across router tracks.
//
// The output is byte-deterministic: stamps are simulated cycles, the
// event order is a stable sort by timestamp over the deterministic
// record order, and JSON object keys are fixed.
func (t *Sink) WritePerfetto(w io.Writer, tool string, meta map[string]string) error {
	return t.WritePerfettoExtra(w, tool, meta, nil)
}

// WritePerfettoExtra is WritePerfetto with caller-supplied events
// merged in: extra metadata joins the header block, extra data events
// join the stable timestamp sort. Safe on a nil sink when extra is the
// only content (the sim-track processes are still declared so the
// export stays obscheck-valid).
func (t *Sink) WritePerfettoExtra(w io.Writer, tool string, meta map[string]string, extra []ExtraEvent) error {
	t.resolveStarts()
	secs := t.Sections()
	plat := t.Platform()

	pipelined := false
	for _, sec := range secs {
		if sec.Stage > 0 || sec.Batch > 0 {
			pipelined = true
			break
		}
	}

	var evs []pfEvent
	namedRouter := map[int]bool{}
	namedLink := map[int]bool{}
	namedCore := map[int]bool{}
	namedStage := map[int]bool{}
	thread := func(pid, tid int, named map[int]bool, name string) {
		if named[tid] {
			return
		}
		named[tid] = true
		evs = append(evs, pfEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": name}})
	}
	router := func(node int) {
		x, y := -1, -1
		if plat.MeshW > 0 {
			x, y = node%plat.MeshW, node/plat.MeshW
		}
		thread(PidRouters, node, namedRouter, fmt.Sprintf("router %d (%d,%d)", node, x, y))
	}

	for _, sec := range secs {
		if pipelined {
			thread(PidStages, sec.Stage, namedStage, fmt.Sprintf("stage %d", sec.Stage))
			evs = append(evs, pfEvent{Name: sec.Label, Cat: "stage", Ph: "X",
				TS: sec.Start, Dur: sec.span(), Pid: PidStages, Tid: sec.Stage,
				Args: map[string]any{"batch": sec.Batch, "comm": sec.Comm}})
		}
		chains, err := buildChains(sec)
		if err != nil {
			return err
		}
		for _, c := range chains {
			if c.Packet < 0 {
				continue // never-injected transfers carry no hop slices
			}
			id := fmt.Sprintf("%d.%d.%d", sec.Index, c.Packet, c.Attempt)
			name := fmt.Sprintf("pkt %d", c.Packet)
			if c.Attempt > 0 {
				name = fmt.Sprintf("pkt %d try %d", c.Packet, c.Attempt+1)
			}
			last := len(c.Hops) - 1
			for i, h := range c.Hops {
				if h.Depart == 0 && i == last && c.Outcome != Delivered {
					break // attempt ended before this hop departed
				}
				router(h.Node)
				ts := sec.Start + h.Arrive
				evs = append(evs, pfEvent{Name: name, Cat: "hop", Ph: "X",
					TS: ts, Dur: h.Depart - h.Arrive, Pid: PidRouters, Tid: h.Node,
					Args: map[string]any{
						"section": sec.Label, "src": c.Src, "dst": c.Dst,
						"out": DirNames[h.Port], "plane": h.Plane,
					}})
				switch {
				case i == 0 && i != last:
					evs = append(evs, pfEvent{Name: name, Cat: "hop", Ph: "s",
						TS: ts, Pid: PidRouters, Tid: h.Node, ID: id})
				case i != last:
					evs = append(evs, pfEvent{Name: name, Cat: "hop", Ph: "t",
						TS: ts, Pid: PidRouters, Tid: h.Node, ID: id})
				case i == last && i != 0:
					evs = append(evs, pfEvent{Name: name, Cat: "hop", Ph: "f", BP: "e",
						TS: ts, Pid: PidRouters, Tid: h.Node, ID: id})
				}
			}
			if c.Outcome == Delivered {
				h := c.Hops[last]
				evs = append(evs, pfEvent{Name: "eject " + name, Cat: "eject", Ph: "X",
					TS: sec.Start + h.Depart, Dur: c.Eject - h.Depart,
					Pid: PidRouters, Tid: h.Node,
					Args: map[string]any{"section": sec.Label, "flits": c.Flits}})
			}
		}
		for i := range sec.Events {
			e := &sec.Events[i]
			switch e.Kind {
			case KindRetx:
				router(int(e.Node))
				evs = append(evs, pfEvent{Name: fmt.Sprintf("retx pkt %d", e.Packet),
					Cat: "fault", Ph: "i", TS: sec.Start + e.Cycle,
					Pid: PidRouters, Tid: int(e.Node),
					Args: map[string]any{"section": sec.Label, "attempt": e.Attempt, "reinject": e.Queued}})
			case KindLost:
				router(int(e.Node))
				evs = append(evs, pfEvent{Name: fmt.Sprintf("lost %d→%d", e.Src, e.Dst),
					Cat: "fault", Ph: "i", TS: sec.Start + e.Cycle,
					Pid: PidRouters, Tid: int(e.Node),
					Args: map[string]any{"section": sec.Label, "pkt": e.Packet}})
			case KindLink:
				node, dir := int(e.Node), int(e.Port)
				tid := LinkTid(node, dir)
				thread(PidLinks, tid, namedLink,
					fmt.Sprintf("%d→%d %s", node, plat.Neighbor(node, dir), DirNames[dir]))
				evs = append(evs,
					pfEvent{Name: "busy", Cat: "link", Ph: "B", TS: sec.Start + e.Cycle,
						Pid: PidLinks, Tid: tid,
						Args: map[string]any{"section": sec.Label, "plane": e.Plane}},
					pfEvent{Name: "busy", Cat: "link", Ph: "E", TS: sec.Start + e.End,
						Pid: PidLinks, Tid: tid})
			case KindCompute:
				core := int(e.Node)
				thread(PidCores, core, namedCore, fmt.Sprintf("core %d", core))
				evs = append(evs,
					pfEvent{Name: sec.Label, Cat: "compute", Ph: "B", TS: sec.Start + e.Cycle,
						Pid: PidCores, Tid: core},
					pfEvent{Name: sec.Label, Cat: "compute", Ph: "E", TS: sec.Start + e.End,
						Pid: PidCores, Tid: core})
			}
		}
	}

	var extraMeta []pfEvent
	for _, e := range extra {
		pe := pfEvent{Name: e.Name, Cat: e.Cat, Ph: e.Ph, TS: e.TS, Dur: e.Dur,
			Pid: e.Pid, Tid: e.Tid, ID: e.ID, BP: e.BP, Args: e.Args}
		if e.Ph == "M" {
			extraMeta = append(extraMeta, pe)
		} else {
			evs = append(evs, pe)
		}
	}

	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].Ph == "M" != (evs[j].Ph == "M") {
			return evs[i].Ph == "M" // metadata first
		}
		return evs[i].TS < evs[j].TS
	})

	head := []pfEvent{
		{Name: "process_name", Ph: "M", Pid: PidRouters, Args: map[string]any{"name": "routers"}},
		{Name: "process_name", Ph: "M", Pid: PidLinks, Args: map[string]any{"name": "links"}},
		{Name: "process_name", Ph: "M", Pid: PidCores, Args: map[string]any{"name": "cores"}},
	}
	if pipelined {
		head = append(head, pfEvent{Name: "process_name", Ph: "M", Pid: PidStages,
			Args: map[string]any{"name": "pipeline stages"}})
	}
	head = append(head, extraMeta...)
	evs = append(head, evs...)

	other := map[string]any{"tool": tool, "clock": "simulated cycles (1 cycle = 1 µs)"}
	for k, v := range meta {
		other[k] = v
	}

	bw := bufio.NewWriter(w)
	// Stream the array by hand so one huge run does not need a second
	// full in-memory copy as a marshalled byte slice.
	if _, err := bw.WriteString("{\"displayTimeUnit\":\"ms\",\"otherData\":"); err != nil {
		return err
	}
	od, err := json.Marshal(other)
	if err != nil {
		return err
	}
	bw.Write(od)
	bw.WriteString(",\"traceEvents\":[\n")
	for i := range evs {
		if i > 0 {
			bw.WriteString(",\n")
		}
		b, err := json.Marshal(&evs[i])
		if err != nil {
			return err
		}
		bw.Write(b)
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
