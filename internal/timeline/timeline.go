// Package timeline is the repository's cycle-accurate event tracer: a
// sink that records, in **simulated cycles** (never wall time), the
// full lifecycle of every NoC packet — injection, per-hop router
// traversal with VC-allocation and switch stalls, ejection, and
// fault-layer retransmission attempts — plus exact per-link busy
// intervals and per-core per-layer compute spans from the CMP
// simulation.
//
// Where internal/obs answers "how much" (aggregate counters and
// histograms), timeline answers "where inside a burst the cycles go":
// which transfer chain bounds a layer's drain time, how much of a
// packet's latency is queueing vs serialization vs hop latency, and
// which mesh links run hot. Two renderers expose the data: a Chrome
// trace-event JSON loadable in Perfetto / chrome://tracing (one track
// per router, link and core, with flow arrows stitching a packet's
// hops, see perfetto.go) and a compact deterministic JSONL record for
// tests and the cmd/l2s-trace analyzer (see record.go, analyze.go).
//
// The package follows the same two contracts as internal/obs:
//
//  1. Nil is off. Every method is safe on a nil *Sink and nil
//     *Section; the disabled path is a pointer check with no
//     allocations, so instrumentation stays inline in the NoC
//     cycle loop at zero cost when tracing is not requested.
//
//  2. Determinism. Events are stamped only with simulated cycles, and
//     ordering never depends on host scheduling: each Section is
//     recorded single-threadedly by the simulator that owns the burst,
//     and sections render in registration order — which callers (e.g.
//     internal/cmp) establish serially, in layer order, before any
//     parallel work starts. A timeline is therefore byte-identical at
//     every host worker count, so golden-file tests work.
package timeline

import "sync"

// Kind discriminates timeline events. The values are the JSON "k"
// field of the record format and are part of the artifact schema.
type Kind string

// Event kinds. Inject/Arrive/Depart/Eject trace one packet attempt's
// head flit through the network; Retx/Lost terminate an attempt on the
// fault path; Link and Compute are track-occupancy intervals.
const (
	KindInject  Kind = "inject"  // head flit entered the source router's local port
	KindArrive  Kind = "arrive"  // head flit buffered at a downstream router input VC
	KindDepart  Kind = "depart"  // head flit won switch allocation and left the router
	KindEject   Kind = "eject"   // tail flit ejected intact at the destination
	KindRetx    Kind = "retx"    // corrupt tail detected; retransmission scheduled
	KindLost    Kind = "lost"    // packet abandoned (budget exhausted, dead endpoint…)
	KindLink    Kind = "link"    // one contiguous busy interval of a mesh link
	KindCompute Kind = "compute" // one core's compute span of a layer
)

// Event is one timeline entry. Field meaning varies by Kind (see the
// recording methods); unused fields stay zero and are omitted from
// JSON. Cycles are relative to the owning section's start.
type Event struct {
	Kind    Kind  `json:"k"`
	Cycle   int64 `json:"c"`            // primary cycle stamp
	End     int64 `json:"e,omitempty"`  // interval end (Link, Compute), exclusive
	Queued  int64 `json:"q,omitempty"`  // Inject: NI-queue entry; Retx: next inject; Depart: VC-alloc cycle
	Packet  int32 `json:"p,omitempty"`  // packet id within the section (-1: never injected)
	Attempt int32 `json:"a,omitempty"`  // retransmission attempt, 0 = first try
	Node    int32 `json:"n,omitempty"`  // router / core / link-source mesh node
	Port    int32 `json:"d,omitempty"`  // port or link direction: 0 local, 1..4 E/W/N/S
	VC      int32 `json:"v,omitempty"`  // virtual channel (Arrive)
	Plane   int32 `json:"pl,omitempty"` // physical-channel plane
	Src     int32 `json:"s,omitempty"`  // packet source node (Inject, Lost)
	Dst     int32 `json:"t,omitempty"`  // packet destination node (Inject, Lost)
	Flits   int32 `json:"f,omitempty"`  // packet length in flits (Inject)
}

// DirNames names the Port values of Link/Arrive/Depart events.
var DirNames = [5]string{"local", "east", "west", "north", "south"}

// Platform carries the simulated-hardware parameters an analyzer needs
// to decompose latencies (router pipeline depth, mesh shape). The
// first writer wins; it is serialized into the record header.
type Platform struct {
	MeshW        int `json:"mesh_w,omitempty"`
	MeshH        int `json:"mesh_h,omitempty"`
	Stages       int `json:"stages,omitempty"` // router pipeline depth in cycles
	Planes       int `json:"planes,omitempty"`
	VCs          int `json:"vcs,omitempty"`
	FlitBytes    int `json:"flit_bytes,omitempty"`
	PacketFlits  int `json:"packet_flits,omitempty"`
}

// Sink collects a run's timeline. The zero value is not usable; use
// NewSink. A nil *Sink is the disabled tracer: every operation on it
// (and on the nil sections it hands out) is a no-op.
type Sink struct {
	mu       sync.Mutex
	sections []*Section
	platform Platform
	platSet  bool
}

// NewSink creates an empty timeline sink.
func NewSink() *Sink { return &Sink{} }

// SetPlatform records the simulated-hardware parameters once; later
// calls are ignored so pooled simulators can set it idempotently.
// No-op on nil.
func (t *Sink) SetPlatform(p Platform) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.platSet {
		t.platform = p
		t.platSet = true
	}
}

// Platform returns the recorded hardware parameters (zero on nil).
func (t *Sink) Platform() Platform {
	if t == nil {
		return Platform{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.platform
}

// Section registers the next section of the timeline — one layer
// transition, one burst — and returns its recorder. Sections render in
// registration order, so callers must register them from a single
// goroutine (internal/cmp registers all layer sections serially before
// the parallel layer loop); the returned *Section may then be filled
// from whatever worker owns the burst, single-threadedly. Returns nil
// on a nil sink.
func (t *Sink) Section(label string) *Section {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &Section{Index: len(t.sections), Label: label}
	t.sections = append(t.sections, s)
	return s
}

// Sections returns the registered sections in registration order
// (nil on a nil sink). The slice is a copy; the sections are shared.
func (t *Sink) Sections() []*Section {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Section(nil), t.sections...)
}

// Events returns the total event count across sections (0 on nil).
func (t *Sink) Events() int {
	n := 0
	for _, s := range t.Sections() {
		n += len(s.Events)
	}
	return n
}

// resolveStarts assigns a global start cycle to every section that was
// not given one explicitly (SetStart): sections stack end to end, each
// beginning where the previous one's span (comm + compute tail) ends.
// Deterministic: depends only on registration order and recorded
// cycles. Called by the renderers under the sink lock.
func (t *Sink) resolveStarts() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var cursor int64
	for _, s := range t.sections {
		if !s.hasStart {
			s.Start = cursor
			s.hasStart = true
		}
		end := s.Start + s.span()
		if end > cursor {
			cursor = end
		}
	}
}

// Section is one contiguous segment of the timeline — the burst of a
// single layer transition plus that layer's compute spans. It is
// filled by exactly one goroutine at a time; methods on it take no
// locks. All cycle stamps are relative to Start.
type Section struct {
	Index int    // registration order; render order
	Label string // layer or burst name
	Start int64  // global offset in cycles (assigned by owner or resolveStarts)
	Comm  int64  // burst drain cycles (the layer's blocking communication)

	// Stage and Batch place the section in a pipelined execution
	// (internal/cmp.RunPipeline): which pipeline stage ran it, for which
	// in-flight inference. Both stay 0 for layer-synchronous runs, so
	// they vanish from records (omitempty) and depth-1 pipelined records
	// remain byte-identical to barrier ones. When any section carries a
	// nonzero stage or batch the Perfetto renderer adds a stage-track
	// process whose gaps are the pipeline bubbles.
	Stage int
	Batch int

	Events []Event

	hasStart bool
}

// span returns the section's extent in cycles: the burst drain plus
// whatever intervals (compute spans) reach past it.
func (s *Section) span() int64 {
	end := s.Comm
	for i := range s.Events {
		if e := &s.Events[i]; e.End > end {
			end = e.End
		} else if e.Cycle > end {
			end = e.Cycle
		}
	}
	return end
}

// SetStart pins the section's global start cycle (internal/cmp assigns
// cumulative layer offsets after its fold). No-op on nil.
func (s *Section) SetStart(cycle int64) {
	if s == nil {
		return
	}
	s.Start = cycle
	s.hasStart = true
}

// SetStage tags the section with its pipeline coordinates. No-op on
// nil.
func (s *Section) SetStage(stage, batch int) {
	if s == nil {
		return
	}
	s.Stage = stage
	s.Batch = batch
}

// SetComm records the burst's drain time. No-op on nil.
func (s *Section) SetComm(cycles int64) {
	if s == nil {
		return
	}
	s.Comm = cycles
}

// Inject records packet pkt's head flit entering the source router at
// cycle; queued is the cycle the packet entered the NI queue (its
// injection timestamp, backoff-adjusted for retransmissions), so
// cycle−queued is the serialization wait at the source NI. No-op on
// nil.
func (s *Section) Inject(cycle, queued int64, pkt, attempt, src, dst, flits int) {
	if s == nil {
		return
	}
	s.Events = append(s.Events, Event{Kind: KindInject, Cycle: cycle, Queued: queued,
		Packet: int32(pkt), Attempt: int32(attempt),
		Node: int32(src), Src: int32(src), Dst: int32(dst), Flits: int32(flits)})
}

// Arrive records packet pkt's head flit buffering into input port/vc
// of router node at cycle. No-op on nil.
func (s *Section) Arrive(cycle int64, pkt, attempt, node, port, vc, plane int) {
	if s == nil {
		return
	}
	s.Events = append(s.Events, Event{Kind: KindArrive, Cycle: cycle,
		Packet: int32(pkt), Attempt: int32(attempt),
		Node: int32(node), Port: int32(port), VC: int32(vc), Plane: int32(plane)})
}

// Depart records packet pkt's head flit winning switch allocation at
// router node and leaving through port at cycle; vcAt is the cycle the
// downstream VC was allocated, so vcAt−arrive−(Stages−1) is the
// VC-allocation stall and cycle−vcAt the switch stall. Port 0 (local)
// is the start of ejection at the destination. No-op on nil.
func (s *Section) Depart(cycle, vcAt int64, pkt, attempt, node, port, plane int) {
	if s == nil {
		return
	}
	s.Events = append(s.Events, Event{Kind: KindDepart, Cycle: cycle, Queued: vcAt,
		Packet: int32(pkt), Attempt: int32(attempt),
		Node: int32(node), Port: int32(port), Plane: int32(plane)})
}

// Eject records packet pkt's tail flit ejecting intact at node; cycle
// is the eject-complete cycle (inject-to-cycle is the packet latency
// the simulator reports). No-op on nil.
func (s *Section) Eject(cycle int64, pkt, attempt, node int) {
	if s == nil {
		return
	}
	s.Events = append(s.Events, Event{Kind: KindEject, Cycle: cycle,
		Packet: int32(pkt), Attempt: int32(attempt), Node: int32(node)})
}

// Retx records a corrupt tail ejection of packet pkt at node: attempt
// is the *new* attempt number and next the cycle the retransmission
// re-enters the source NI queue (backoff included). No-op on nil.
func (s *Section) Retx(cycle, next int64, pkt, attempt, node int) {
	if s == nil {
		return
	}
	s.Events = append(s.Events, Event{Kind: KindRetx, Cycle: cycle, Queued: next,
		Packet: int32(pkt), Attempt: int32(attempt), Node: int32(node)})
}

// Lost records the terminal loss of the src→dst transfer at cycle:
// retry budget exhausted (pkt ≥ 0) or never injected because the
// endpoints are disconnected or dead (pkt = −1). No-op on nil.
func (s *Section) Lost(cycle int64, pkt, attempt, node, src, dst int) {
	if s == nil {
		return
	}
	s.Events = append(s.Events, Event{Kind: KindLost, Cycle: cycle,
		Packet: int32(pkt), Attempt: int32(attempt),
		Node: int32(node), Src: int32(src), Dst: int32(dst)})
}

// LinkBusy records one contiguous busy interval [start, end) of the
// link leaving node through direction dir (1..4) on the given plane.
// Intervals are exact: the NoC simulator merges cycle-adjacent flit
// traversals and flushes each interval when the link goes idle. No-op
// on nil.
func (s *Section) LinkBusy(start, end int64, plane, node, dir int) {
	if s == nil {
		return
	}
	s.Events = append(s.Events, Event{Kind: KindLink, Cycle: start, End: end,
		Node: int32(node), Port: int32(dir), Plane: int32(plane)})
}

// Compute records core's compute span [start, end) for the section's
// layer. No-op on nil.
func (s *Section) Compute(start, end int64, core int) {
	if s == nil {
		return
	}
	s.Events = append(s.Events, Event{Kind: KindCompute, Cycle: start, End: end, Node: int32(core)})
}
