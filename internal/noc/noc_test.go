package noc

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"learn2scale/internal/obs"
	"learn2scale/internal/topology"
)

func cfg4x4() Config { return DefaultConfig(topology.NewMesh(4, 4)) }

func mustRun(t *testing.T, cfg Config, msgs []Message) Result {
	t.Helper()
	s := MustNew(cfg)
	res, err := s.RunBurst(msgs)
	if err != nil {
		t.Fatalf("RunBurst: %v", err)
	}
	return res
}

// checkConservation asserts the flit-conservation invariants that any
// correct run must satisfy.
func checkConservation(t *testing.T, cfg Config, msgs []Message, res Result) {
	t.Helper()
	if res.BufferReads != res.BufferWrites {
		t.Errorf("buffer reads %d != writes %d", res.BufferReads, res.BufferWrites)
	}
	// Every flit traverses exactly HopDist links and is ejected once.
	var wantHops, wantFlits int64
	for _, m := range msgs {
		if m.Src == m.Dst || m.Bytes <= 0 {
			continue
		}
		f := int64(flitsForBytes(cfg, m.Bytes))
		wantFlits += f
		wantHops += f * int64(cfg.Mesh.HopDist(m.Src, m.Dst))
	}
	if res.Flits != wantFlits {
		t.Errorf("flits = %d, want %d", res.Flits, wantFlits)
	}
	if res.LinkTraversals != wantHops {
		t.Errorf("link traversals = %d, want %d (XY minimal routing)", res.LinkTraversals, wantHops)
	}
	if res.SwitchTraversals != wantHops+wantFlits {
		t.Errorf("switch traversals = %d, want %d", res.SwitchTraversals, wantHops+wantFlits)
	}
	if lb := LowerBoundDrain(cfg, msgs); res.Cycles < lb {
		t.Errorf("drain %d cycles beats lower bound %d", res.Cycles, lb)
	}
}

func TestSinglePacketAdjacent(t *testing.T) {
	cfg := cfg4x4()
	msgs := []Message{{Src: 0, Dst: 1, Bytes: 64}} // 1 head + 1 payload flit
	res := mustRun(t, cfg, msgs)
	if res.Packets != 1 || res.Flits != 2 {
		t.Fatalf("packets=%d flits=%d", res.Packets, res.Flits)
	}
	checkConservation(t, cfg, msgs, res)
	// Pipeline floor: inject(ready at stage-1) + traverse + link +
	// stage + eject. Exact value is implementation-defined; bound it.
	if res.Cycles < 4 || res.Cycles > 20 {
		t.Errorf("adjacent 2-flit packet drained in %d cycles", res.Cycles)
	}
}

func TestPacketSplitting(t *testing.T) {
	cfg := cfg4x4()
	// 1216 bytes = exactly one 20-flit packet payload.
	if got := PacketsForBytes(cfg, cfg.PayloadPerPacket()); got != 1 {
		t.Errorf("one full payload → %d packets", got)
	}
	if got := PacketsForBytes(cfg, cfg.PayloadPerPacket()+1); got != 2 {
		t.Errorf("payload+1 → %d packets", got)
	}
	// 100KB message: ceil(102400/1216) = 85 packets.
	res := mustRun(t, cfg, []Message{{Src: 0, Dst: 15, Bytes: 102400}})
	if res.Packets != 85 {
		t.Errorf("packets = %d, want 85", res.Packets)
	}
}

func TestZeroAndSelfMessagesIgnored(t *testing.T) {
	cfg := cfg4x4()
	res := mustRun(t, cfg, []Message{
		{Src: 3, Dst: 3, Bytes: 4096},
		{Src: 1, Dst: 2, Bytes: 0},
	})
	if res.Packets != 0 || res.Cycles != 0 {
		t.Errorf("expected empty run, got %+v", res)
	}
}

func TestOutOfRangeMessageErrors(t *testing.T) {
	s := MustNew(cfg4x4())
	if _, err := s.RunBurst([]Message{{Src: 0, Dst: 16, Bytes: 10}}); err == nil {
		t.Error("expected error for out-of-mesh destination")
	}
}

func TestBadConfigErrors(t *testing.T) {
	cfg := cfg4x4()
	cfg.VCs = 0
	if _, err := New(cfg); err == nil {
		t.Error("expected error for zero VCs")
	}
	if _, err := New(Config{}); err == nil {
		t.Error("expected error for zero config")
	}
}

func TestDeterminism(t *testing.T) {
	cfg := cfg4x4()
	rng := rand.New(rand.NewSource(11))
	var msgs []Message
	for i := 0; i < 40; i++ {
		msgs = append(msgs, Message{
			Src:   rng.Intn(16),
			Dst:   rng.Intn(16),
			Bytes: 1 + rng.Intn(5000),
		})
	}
	a := mustRun(t, cfg, msgs)
	b := mustRun(t, cfg, msgs)
	if a != b {
		t.Errorf("same input gave different results:\n%+v\n%+v", a, b)
	}
}

func TestAllToAllBroadcastBurst(t *testing.T) {
	// The paper's traditional parallelization: every core sends its
	// activation slice to every other core at a layer transition.
	cfg := cfg4x4()
	const sliceBytes = 2048
	var msgs []Message
	for s := 0; s < 16; s++ {
		for d := 0; d < 16; d++ {
			if s != d {
				msgs = append(msgs, Message{Src: s, Dst: d, Bytes: sliceBytes})
			}
		}
	}
	res := mustRun(t, cfg, msgs)
	checkConservation(t, cfg, msgs, res)
	// Drain should be within a small factor of the analytic bound —
	// the network must not collapse under the burst.
	lb := LowerBoundDrain(cfg, msgs)
	if res.Cycles > 8*lb {
		t.Errorf("all-to-all drain %d cycles vs lower bound %d (too congested)", res.Cycles, lb)
	}
}

func TestTrafficReductionReducesDrain(t *testing.T) {
	// The core claim of the paper's method: removing long-distance
	// messages shortens the burst drain. Compare full broadcast with a
	// neighbor-only pattern of the same per-message size.
	cfg := cfg4x4()
	var full, near []Message
	for s := 0; s < 16; s++ {
		for d := 0; d < 16; d++ {
			if s == d {
				continue
			}
			m := Message{Src: s, Dst: d, Bytes: 4096}
			full = append(full, m)
			if cfg.Mesh.HopDist(s, d) <= 1 {
				near = append(near, m)
			}
		}
	}
	rf := mustRun(t, cfg, full)
	rn := mustRun(t, cfg, near)
	if rn.Cycles >= rf.Cycles {
		t.Errorf("neighbor-only drain %d !< full broadcast drain %d", rn.Cycles, rf.Cycles)
	}
	if rn.LinkTraversals >= rf.LinkTraversals {
		t.Errorf("neighbor-only flit-hops %d !< full %d", rn.LinkTraversals, rf.LinkTraversals)
	}
}

func TestMorePlanesDrainFaster(t *testing.T) {
	mesh := topology.NewMesh(4, 4)
	var msgs []Message
	for s := 0; s < 16; s++ {
		msgs = append(msgs, Message{Src: s, Dst: 15 - s, Bytes: 20000})
	}
	one := DefaultConfig(mesh)
	one.Planes = 1
	two := DefaultConfig(mesh)
	two.Planes = 2
	r1 := mustRun(t, one, msgs)
	r2 := mustRun(t, two, msgs)
	if r2.Cycles >= r1.Cycles {
		t.Errorf("2 planes (%d cycles) not faster than 1 plane (%d cycles)", r2.Cycles, r1.Cycles)
	}
}

func TestLatencyGrowsWithDistance(t *testing.T) {
	cfg := cfg4x4()
	near := mustRun(t, cfg, []Message{{Src: 0, Dst: 1, Bytes: 256}})
	far := mustRun(t, cfg, []Message{{Src: 0, Dst: 15, Bytes: 256}})
	if far.MaxPacketLatency <= near.MaxPacketLatency {
		t.Errorf("far latency %d <= near latency %d", far.MaxPacketLatency, near.MaxPacketLatency)
	}
}

func TestTimeOffsetInjection(t *testing.T) {
	cfg := cfg4x4()
	res := mustRun(t, cfg, []Message{{Src: 0, Dst: 3, Bytes: 64, Time: 100}})
	if res.Cycles <= 100 {
		t.Errorf("cycle count %d must exceed injection time 100", res.Cycles)
	}
	// Latency is measured from the message's own injection time.
	if res.MaxPacketLatency > 60 {
		t.Errorf("latency %d should not include the injection delay", res.MaxPacketLatency)
	}
}

func TestResultAdd(t *testing.T) {
	a := Result{Cycles: 10, Packets: 2, Flits: 5, LinkTraversals: 7, MaxPacketLatency: 4}
	b := Result{Cycles: 5, Packets: 1, Flits: 2, LinkTraversals: 3, MaxPacketLatency: 9}
	a.Add(b)
	if a.Cycles != 15 || a.Packets != 3 || a.Flits != 7 || a.LinkTraversals != 10 {
		t.Errorf("Add got %+v", a)
	}
	if a.MaxPacketLatency != 9 {
		t.Errorf("Add must take max latency, got %d", a.MaxPacketLatency)
	}
}

func TestAvgLatencyEmpty(t *testing.T) {
	if (Result{}).AvgLatency() != 0 {
		t.Error("AvgLatency of empty result must be 0")
	}
}

// Property: for random message sets, conservation invariants hold and
// the network always drains.
func TestQuickRandomTrafficConservation(t *testing.T) {
	cfg := DefaultConfig(topology.NewMesh(3, 3))
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		msgs := make([]Message, n)
		for i := range msgs {
			msgs[i] = Message{
				Src:   rng.Intn(9),
				Dst:   rng.Intn(9),
				Bytes: rng.Intn(4000),
				Time:  int64(rng.Intn(50)),
			}
		}
		s := MustNew(cfg)
		res, err := s.RunBurst(msgs)
		if err != nil {
			return false
		}
		var wantFlits, wantHops int64
		for _, m := range msgs {
			if m.Src == m.Dst || m.Bytes <= 0 {
				continue
			}
			fl := int64(flitsForBytes(cfg, m.Bytes))
			wantFlits += fl
			wantHops += fl * int64(cfg.Mesh.HopDist(m.Src, m.Dst))
		}
		return res.Flits == wantFlits &&
			res.LinkTraversals == wantHops &&
			res.BufferReads == res.BufferWrites &&
			res.SwitchTraversals == wantHops+wantFlits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: adding traffic never reduces flit-hops and never makes the
// result non-draining (deadlock freedom smoke test).
func TestQuickMonotoneTraffic(t *testing.T) {
	cfg := DefaultConfig(topology.NewMesh(4, 2))
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := []Message{{Src: rng.Intn(8), Dst: rng.Intn(8), Bytes: 1 + rng.Intn(2000)}}
		more := append([]Message{}, base...)
		more = append(more, Message{Src: rng.Intn(8), Dst: rng.Intn(8), Bytes: 1 + rng.Intn(2000)})
		s := MustNew(cfg)
		r1, err1 := s.RunBurst(base)
		r2, err2 := s.RunBurst(more)
		return err1 == nil && err2 == nil && r2.LinkTraversals >= r1.LinkTraversals
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAllToAllBurst16(b *testing.B) {
	cfg := cfg4x4()
	var msgs []Message
	for s := 0; s < 16; s++ {
		for d := 0; d < 16; d++ {
			if s != d {
				msgs = append(msgs, Message{Src: s, Dst: d, Bytes: 4096})
			}
		}
	}
	sim := MustNew(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunBurst(msgs); err != nil {
			b.Fatal(err)
		}
	}
}

// Per-hop latency must scale with the router pipeline depth: a lone
// head+tail packet over h hops takes roughly h·(stages+1) cycles plus
// injection/ejection overhead, and doubling the stage count must slow
// it down.
func TestPerHopLatencyScalesWithStages(t *testing.T) {
	base := cfg4x4()
	deep := cfg4x4()
	deep.Stages = 6
	msg := []Message{{Src: 0, Dst: 15, Bytes: 64}} // 6 hops
	rBase := mustRun(t, base, msg)
	rDeep := mustRun(t, deep, msg)
	if rDeep.MaxPacketLatency <= rBase.MaxPacketLatency {
		t.Errorf("deeper pipeline not slower: %d vs %d",
			rDeep.MaxPacketLatency, rBase.MaxPacketLatency)
	}
	// Lower bound: each hop costs at least the router pipeline depth
	// (stages−1 wait + 1 switch/link cycle): 6 hops × 3 = 18 cycles.
	if rBase.MaxPacketLatency < 18 {
		t.Errorf("latency %d beats the pipeline floor", rBase.MaxPacketLatency)
	}
}

// A single-VC network must still drain an all-to-all burst (wormhole +
// XY routing is deadlock-free without extra VCs).
func TestSingleVCDeadlockFree(t *testing.T) {
	cfg := cfg4x4()
	cfg.VCs = 1
	var msgs []Message
	for s := 0; s < 16; s++ {
		for d := 0; d < 16; d++ {
			if s != d {
				msgs = append(msgs, Message{Src: s, Dst: d, Bytes: 1024})
			}
		}
	}
	res := mustRun(t, cfg, msgs)
	if res.Packets == 0 || res.Cycles == 0 {
		t.Fatal("single-VC burst did not run")
	}
	checkConservation(t, cfg, msgs, res)
}

// TestLinkStatsTopN covers the TopN accessor and the "(+N more)"
// truncation trailer of String.
func TestLinkStatsTopN(t *testing.T) {
	var ls LinkStats
	for i := 0; i < 12; i++ {
		ls.Loads = append(ls.Loads, LinkLoad{From: i, To: i + 1, Flits: int64(100 - i)})
		ls.Total += int64(100 - i)
	}
	ls.Max = 100
	if got := ls.TopN(3); len(got) != 3 || got[0].Flits != 100 || got[2].Flits != 98 {
		t.Errorf("TopN(3) = %v", got)
	}
	if got := ls.TopN(50); len(got) != 12 {
		t.Errorf("TopN(50) = %d links, want all 12", len(got))
	}
	if got := ls.TopN(0); got != nil {
		t.Errorf("TopN(0) = %v, want nil", got)
	}
	s := ls.String()
	if !strings.Contains(s, "(+4 more)") {
		t.Errorf("String missing truncation trailer:\n%s", s)
	}
	short := LinkStats{Loads: ls.Loads[:3], Max: 100, Total: 297}
	if strings.Contains(short.String(), "more)") {
		t.Errorf("untruncated String grew a trailer:\n%s", short.String())
	}
}

// TestObsMetrics attaches a registry and checks the simulator reports
// the packet-latency histogram, router occupancy high-water, and
// packet/flit counters consistently with the Result.
func TestObsMetrics(t *testing.T) {
	reg := obs.New()
	cfg := cfg4x4()
	cfg.Obs = reg
	var msgs []Message
	for d := 1; d < 16; d++ {
		msgs = append(msgs, Message{Src: 0, Dst: d, Bytes: 2048})
	}
	res := mustRun(t, cfg, msgs)

	snap := reg.SnapshotClass(obs.Stable)
	var hist *obs.HistogramSnap
	for i := range snap.Histograms {
		if snap.Histograms[i].Name == "noc.packet_latency_cycles" {
			hist = &snap.Histograms[i]
		}
	}
	if hist == nil {
		t.Fatal("no packet-latency histogram recorded")
	}
	if hist.Count != res.Packets {
		t.Errorf("histogram count %d != packets %d", hist.Count, res.Packets)
	}
	if hist.Sum != res.TotalPacketLatency || hist.Max != res.MaxPacketLatency {
		t.Errorf("histogram digest sum=%d max=%d, result %d/%d",
			hist.Sum, hist.Max, res.TotalPacketLatency, res.MaxPacketLatency)
	}
	if len(hist.Counts) != len(LatencyBuckets)+1 {
		t.Errorf("bucket count %d, want %d", len(hist.Counts), len(LatencyBuckets)+1)
	}
	if res.MaxRouterOccupancy <= 0 {
		t.Error("burst left no occupancy high-water")
	}
	var found bool
	for _, g := range snap.Gauges {
		if g.Name == "noc.router_occupancy_high_water" {
			found = true
			if int64(g.Value) != res.MaxRouterOccupancy {
				t.Errorf("gauge %v != result %d", g.Value, res.MaxRouterOccupancy)
			}
		}
	}
	if !found {
		t.Error("occupancy gauge missing")
	}
	for _, c := range snap.Counters {
		switch c.Name {
		case "noc.packets":
			if c.Value != res.Packets {
				t.Errorf("packets counter %d != %d", c.Value, res.Packets)
			}
		case "noc.flits":
			if c.Value != res.Flits {
				t.Errorf("flits counter %d != %d", c.Value, res.Flits)
			}
		}
	}
}

// Occupancy must drain back to zero when the burst finishes: every
// pushed flit is popped.
func TestObsOccupancyDrains(t *testing.T) {
	cfg := cfg4x4()
	s := MustNew(cfg)
	if _, err := s.RunBurst([]Message{{Src: 0, Dst: 15, Bytes: 8192}}); err != nil {
		t.Fatal(err)
	}
	for p := range s.planes {
		for rid, n := range s.planes[p].occ {
			if n != 0 {
				t.Errorf("plane %d router %d holds %d flits after drain", p, rid, n)
			}
		}
	}
}
