package noc

import (
	"reflect"
	"testing"

	"learn2scale/internal/fault"
	"learn2scale/internal/timeline"
	"learn2scale/internal/topology"
)

// burstPatterns returns a few deterministic message bursts on an n-node
// mesh: all-to-all, a ring shift, and a hotspot.
func burstPatterns(nodes int) [][]Message {
	var all []Message
	for i := 0; i < nodes; i++ {
		for j := 0; j < nodes; j++ {
			if i != j {
				all = append(all, Message{Src: i, Dst: j, Bytes: 512 + 64*((i+j)%5)})
			}
		}
	}
	var ring []Message
	for i := 0; i < nodes; i++ {
		ring = append(ring, Message{Src: i, Dst: (i + 1) % nodes, Bytes: 2048})
	}
	var hot []Message
	for i := 1; i < nodes; i++ {
		hot = append(hot, Message{Src: i, Dst: 0, Bytes: 1024 + 32*i})
	}
	return [][]Message{all, ring, hot}
}

// TestSessionSequentialMatchesRunBurst is the session's determinism
// contract: groups injected strictly one after another (each at the
// previous group's end cycle) must produce, per group, the exact
// Result and timeline events of independent RunBurst calls — the
// property depth-1 pipelined execution rests on.
func TestSessionSequentialMatchesRunBurst(t *testing.T) {
	for _, faulty := range []bool{false, true} {
		cfg := DefaultConfig(topology.Mesh{W: 4, H: 4})
		if faulty {
			cfg.Fault = &fault.Config{Seed: 5, DropProb: 0.05, RetryBudget: 2}
		}
		bursts := burstPatterns(cfg.Mesh.Nodes())

		// Reference: each burst on its own freshly reset simulator.
		refSink := timeline.NewSink()
		var want []Result
		ref := MustNew(cfg)
		for k, msgs := range bursts {
			ref.SetFaultSalt(int64(k))
			ref.SetTimelineSection(refSink.Section("b"))
			r, err := ref.RunBurst(msgs)
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, r)
		}

		// Session: same bursts, same salts, strictly sequential.
		sesSink := timeline.NewSink()
		ses := MustNew(cfg).Begin()
		var at int64
		var got []Result
		for k, msgs := range bursts {
			gi, err := ses.Inject(msgs, at, int64(k), sesSink.Section("b"))
			if err != nil {
				t.Fatal(err)
			}
			g, end, err := ses.Next()
			if err != nil {
				t.Fatal(err)
			}
			if g != gi {
				t.Fatalf("faulty=%v: resolved group %d, injected %d", faulty, g, gi)
			}
			got = append(got, ses.Result(g))
			at = end
		}

		for k := range bursts {
			if !reflect.DeepEqual(want[k], got[k]) {
				t.Errorf("faulty=%v burst %d: session result differs\nburst:   %+v\nsession: %+v",
					faulty, k, want[k], got[k])
			}
		}
		ws, gs := refSink.Sections(), sesSink.Sections()
		for k := range bursts {
			if ws[k].Comm != gs[k].Comm {
				t.Errorf("faulty=%v burst %d: comm %d vs %d", faulty, k, ws[k].Comm, gs[k].Comm)
			}
			if !reflect.DeepEqual(ws[k].Events, gs[k].Events) {
				t.Errorf("faulty=%v burst %d: timeline events differ (%d vs %d events)",
					faulty, k, len(ws[k].Events), len(gs[k].Events))
			}
		}
	}
}

// Overlapping groups must all resolve, conserve packets
// (injected == ejected + lost without structural faults), and report
// per-group drain times no shorter than their isolated runs — shared
// links can only add contention.
func TestSessionOverlapConservation(t *testing.T) {
	cfg := DefaultConfig(topology.Mesh{W: 4, H: 4})
	cfg.Fault = &fault.Config{Seed: 11, DropProb: 0.08, RetryBudget: 1}
	bursts := burstPatterns(cfg.Mesh.Nodes())

	iso := make([]Result, len(bursts))
	sim := MustNew(cfg)
	for k, msgs := range bursts {
		sim.SetFaultSalt(int64(k))
		r, err := sim.RunBurst(msgs)
		if err != nil {
			t.Fatal(err)
		}
		iso[k] = r
	}

	ses := MustNew(cfg).Begin()
	for k, msgs := range bursts {
		if _, err := ses.Inject(msgs, 0, int64(k), nil); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[int]bool{}
	for range bursts {
		g, end, err := ses.Next()
		if err != nil {
			t.Fatal(err)
		}
		if seen[g] {
			t.Fatalf("group %d resolved twice", g)
		}
		seen[g] = true
		r := ses.Result(g)
		if r.Packets != r.EjectedPackets+r.LostPackets {
			t.Errorf("group %d: %d packets != %d ejected + %d lost",
				g, r.Packets, r.EjectedPackets, r.LostPackets)
		}
		if r.Cycles != end {
			t.Errorf("group %d: Cycles %d, end %d (injected at 0)", g, r.Cycles, end)
		}
		if r.Cycles < iso[g].Cycles {
			t.Errorf("group %d drained in %d cycles under contention, %d isolated", g, r.Cycles, iso[g].Cycles)
		}
	}
	if _, _, err := ses.Next(); err == nil {
		t.Error("Next with no outstanding groups did not error")
	}
}

func TestSessionEdgeCases(t *testing.T) {
	cfg := DefaultConfig(topology.Mesh{W: 2, H: 2})
	ses := MustNew(cfg).Begin()

	// Zero-traffic group resolves immediately at its inject cycle.
	gi, err := ses.Inject([]Message{{Src: 1, Dst: 1, Bytes: 64}}, 42, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	g, end, err := ses.Next()
	if err != nil {
		t.Fatal(err)
	}
	if g != gi || end != 42 {
		t.Errorf("zero-traffic group resolved as (%d, %d), want (%d, 42)", g, end, gi)
	}

	// Injecting behind the clock is a caller bug.
	if _, err := ses.Inject([]Message{{Src: 0, Dst: 1, Bytes: 64}}, 0, 0, nil); err != nil {
		t.Fatal(err) // clock still 0: allowed
	}
	if _, _, err := ses.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := ses.Inject([]Message{{Src: 0, Dst: 1, Bytes: 64}}, 0, 0, nil); err == nil {
		t.Error("inject behind the session clock did not error")
	}

	// Out-of-mesh messages are rejected.
	if _, err := ses.Inject([]Message{{Src: 0, Dst: 99, Bytes: 64}}, 1000, 0, nil); err == nil {
		t.Error("out-of-mesh message did not error")
	}

	// Sessions are invalidated by RunBurst.
	sim := MustNew(cfg)
	s2 := sim.Begin()
	if _, err := sim.RunBurst([]Message{{Src: 0, Dst: 1, Bytes: 64}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Inject(nil, 0, 0, nil); err == nil {
		t.Error("inject into a session invalidated by RunBurst did not error")
	}
}
