// Package noc is a flit-level, cycle-driven simulator of the 2D-mesh
// wormhole network-on-chip configured in the paper's Table II: 512-bit
// flits, 20-flit packets, dimension-ordered (XY) routing, 3-stage
// router pipeline, credit-based virtual-channel flow control with 3
// VCs, and 2 physical channels (modelled as two independent link
// planes with round-robin packet assignment). It stands in for the
// BookSim2 runs the paper used.
//
// The simulator answers the question the paper's evaluation needs:
// given the burst of synchronization messages emitted at a layer
// transition, how many cycles does the NoC take to drain it, and what
// energy-relevant events (buffer reads/writes, switch and link
// traversals) occur along the way.
package noc

import (
	"fmt"

	"learn2scale/internal/fault"
	"learn2scale/internal/obs"
	"learn2scale/internal/timeline"
	"learn2scale/internal/topology"
)

// Port indices of a mesh router.
const (
	PortLocal = iota
	PortEast
	PortWest
	PortNorth
	PortSouth
	numPorts
)

// Config describes the simulated network. The zero value is not
// usable; start from DefaultConfig.
type Config struct {
	Mesh        topology.Mesh
	FlitBytes   int // payload bytes per flit (512-bit flit = 64)
	PacketFlits int // max flits per packet, head included (20)
	VCs         int // virtual channels per input port (3)
	BufDepth    int // flit slots per VC buffer
	Stages      int // router pipeline depth in cycles (3)
	Planes      int // physical channels (2)
	MaxCycles   int64

	// Obs, when non-nil, receives per-run simulation metrics: the
	// packet-latency histogram and the router queue-occupancy
	// high-water mark. All NoC metrics are stable — packet latencies
	// are simulated cycles, not wall time — so they land in the
	// deterministic section of a flight record.
	Obs *obs.Registry

	// Timeline, when non-nil, receives a cycle-accurate event trace of
	// every run: per-packet inject/hop/eject lifecycles, retransmission
	// attempts, and exact per-link busy intervals, each run in its own
	// auto-registered section. Callers that manage sections themselves
	// (internal/cmp registers one per layer) leave this nil and hand
	// sections to the simulator via SetTimelineSection instead. All
	// stamps are simulated cycles; tracing never changes simulation
	// behaviour or Results.
	Timeline *timeline.Sink

	// Fault, when non-nil and active, injects the configured faults
	// into every run: structural faults (dead links/routers) switch
	// routing from XY to deadlock-free up*/down* around the dead
	// hardware, transient faults corrupt flits in flight (detected at
	// tail ejection and retransmitted with exponential backoff up to
	// the retry budget; packets that exhaust it are reported through
	// LostTransfers). A nil or inactive config is bit-identical to the
	// fault-free simulator.
	Fault *fault.Config
}

// DefaultConfig returns the paper's Table II NoC on the given mesh.
func DefaultConfig(m topology.Mesh) Config {
	return Config{
		Mesh:        m,
		FlitBytes:   64, // 512-bit flit
		PacketFlits: 20,
		VCs:         3,
		BufDepth:    8,
		Stages:      3,
		Planes:      2,
		MaxCycles:   200_000_000,
	}
}

func (c Config) validate() error {
	switch {
	case c.Mesh.Nodes() == 0:
		return fmt.Errorf("noc: config has empty mesh")
	case c.FlitBytes <= 0, c.PacketFlits < 2, c.VCs <= 0, c.BufDepth <= 0,
		c.Stages <= 0, c.Planes <= 0:
		return fmt.Errorf("noc: non-positive parameter in config %+v", c)
	}
	return c.Fault.Validate(c.Mesh)
}

// PayloadPerPacket returns the data bytes one packet can carry
// (one flit is the head).
func (c Config) PayloadPerPacket() int {
	return (c.PacketFlits - 1) * c.FlitBytes
}

// TimelinePlatform returns the simulated-hardware parameters a timeline
// analyzer needs to decompose this network's latencies.
func (c Config) TimelinePlatform() timeline.Platform {
	return timeline.Platform{
		MeshW: c.Mesh.W, MeshH: c.Mesh.H,
		Stages: c.Stages, Planes: c.Planes, VCs: c.VCs,
		FlitBytes: c.FlitBytes, PacketFlits: c.PacketFlits,
	}
}

// Message is one source→destination transfer of Bytes data bytes,
// injected at cycle Time. Messages with Src == Dst or Bytes <= 0 carry
// no traffic and are ignored by the simulator.
type Message struct {
	Src, Dst int
	Bytes    int
	Time     int64
}

// Result aggregates one simulation run.
type Result struct {
	Cycles  int64 // cycle at which the last flit was ejected
	Packets int64
	Flits   int64

	// EjectedPackets counts packets delivered intact. Together with the
	// fault-path counters it closes the conservation invariant the
	// pipeline fuzzer checks: without structural faults,
	// Packets == EjectedPackets + LostPackets.
	EjectedPackets int64

	LinkTraversals   int64 // flit-hops across inter-router links
	SwitchTraversals int64 // crossbar traversals (includes ejection)
	BufferWrites     int64
	BufferReads      int64

	TotalPacketLatency int64 // sum over packets of (eject − inject) cycles
	MaxPacketLatency   int64

	// MaxRouterOccupancy is the high-water mark of flits buffered
	// across the input VCs of any single router during the run — the
	// congestion depth the burst reached.
	MaxRouterOccupancy int64

	// Fault-path outcomes; all zero on a fault-free run.
	Retransmits  int64 // packet retransmissions scheduled after corrupt ejections
	DroppedFlits int64 // flits corrupted while crossing a flaky link
	LostPackets  int64 // packets abandoned: retry budget exhausted or endpoints disconnected
	LostFlits    int64 // flits of lost packets (never delivered payload)
}

// AvgLatency returns the mean packet latency in cycles.
func (r Result) AvgLatency() float64 {
	if r.Packets == 0 {
		return 0
	}
	return float64(r.TotalPacketLatency) / float64(r.Packets)
}

// Add accumulates another result into r (used when summing layer
// transitions into a whole-network total).
func (r *Result) Add(o Result) {
	r.Cycles += o.Cycles
	r.Packets += o.Packets
	r.Flits += o.Flits
	r.EjectedPackets += o.EjectedPackets
	r.LinkTraversals += o.LinkTraversals
	r.SwitchTraversals += o.SwitchTraversals
	r.BufferWrites += o.BufferWrites
	r.BufferReads += o.BufferReads
	r.TotalPacketLatency += o.TotalPacketLatency
	r.Retransmits += o.Retransmits
	r.DroppedFlits += o.DroppedFlits
	r.LostPackets += o.LostPackets
	r.LostFlits += o.LostFlits
	if o.MaxPacketLatency > r.MaxPacketLatency {
		r.MaxPacketLatency = o.MaxPacketLatency
	}
	if o.MaxRouterOccupancy > r.MaxRouterOccupancy {
		r.MaxRouterOccupancy = o.MaxRouterOccupancy
	}
}

// LostTransfer identifies one src→dst transfer the network failed to
// deliver — its retry budget ran out, or structural faults
// disconnected the endpoints. The receiving core zero-fills the
// transfer's slice so inference completes with reduced accuracy
// instead of deadlocking (graceful degradation, handled by
// internal/cmp).
type LostTransfer struct {
	Src, Dst int
}

// LowerBoundDrain returns an analytic lower bound on the burst drain
// time: the max of the per-node injection/ejection serialization
// bounds and the bisection bound, plus the minimum head latency. The
// simulator can never beat this; tests use it as a sanity envelope.
func LowerBoundDrain(cfg Config, msgs []Message) int64 {
	inFlits := make([]int64, cfg.Mesh.Nodes())
	outFlits := make([]int64, cfg.Mesh.Nodes())
	var cross int64
	maxHop := 0
	for _, m := range msgs {
		if m.Src == m.Dst || m.Bytes <= 0 {
			continue
		}
		f := int64(flitsForBytes(cfg, m.Bytes))
		outFlits[m.Src] += f
		inFlits[m.Dst] += f
		if h := cfg.Mesh.HopDist(m.Src, m.Dst); h > maxHop {
			maxHop = h
		}
		// Bisection crossing along the wider dimension.
		half := cfg.Mesh.W / 2
		sx := cfg.Mesh.Coord(m.Src).X
		dx := cfg.Mesh.Coord(m.Dst).X
		if cfg.Mesh.W >= cfg.Mesh.H && cfg.Mesh.W > 1 {
			if (sx < half) != (dx < half) {
				cross += f
			}
		}
	}
	planes := int64(cfg.Planes)
	var lb int64
	for i := range inFlits {
		if b := inFlits[i] / planes; b > lb {
			lb = b
		}
		if b := outFlits[i] / planes; b > lb {
			lb = b
		}
	}
	if cfg.Mesh.W >= cfg.Mesh.H && cfg.Mesh.W > 1 {
		links := int64(cfg.Mesh.H) * planes
		if b := cross / links; b > lb {
			lb = b
		}
	}
	return lb + int64(maxHop*(cfg.Stages+1))
}

func flitsForBytes(cfg Config, bytes int) int {
	payload := cfg.PayloadPerPacket()
	full := bytes / payload
	rem := bytes % payload
	flits := full * cfg.PacketFlits
	if rem > 0 {
		flits += 1 + (rem+cfg.FlitBytes-1)/cfg.FlitBytes
	}
	return flits
}

// PacketsForBytes returns how many packets a message of the given size
// occupies under cfg.
func PacketsForBytes(cfg Config, bytes int) int {
	payload := cfg.PayloadPerPacket()
	n := bytes / payload
	if bytes%payload > 0 {
		n++
	}
	return n
}
