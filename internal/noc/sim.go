package noc

import (
	"fmt"
	"sort"

	"learn2scale/internal/fault"
	"learn2scale/internal/obs"
	"learn2scale/internal/timeline"
)

// sortInjQueue orders one node's injection FIFO by (time, packet id)
// with an in-place insertion sort: per-node queues are short, already
// id-ordered from construction, and sort.SliceStable's closure would
// be RunBurst's only steady-state heap allocation. The sort is stable,
// which is what makes same-(time, id) entries of different session
// groups keep their injection-call order.
func sortInjQueue(q []injEntry) {
	for i := 1; i < len(q); i++ {
		e := q[i]
		j := i
		for j > 0 && (q[j-1].time > e.time ||
			(q[j-1].time == e.time && q[j-1].p.id > e.p.id)) {
			q[j] = q[j-1]
			j--
		}
		q[j] = e
	}
}

// LatencyBuckets are the upper bounds (in cycles) of the packet-
// latency histogram recorded when a simulator has an obs registry
// attached. Latencies are simulated cycles, so the histogram is
// deterministic for a given message burst.
var LatencyBuckets = []int64{16, 32, 64, 128, 256, 512, 1024, 2048, 4096}

// packet is one wormhole packet in flight.
type packet struct {
	id         int   // id within its burst group (timeline / arbitration tiebreak)
	uid        int   // simulator-unique id (VC ownership; groups reuse local ids)
	group      int32 // burst group the packet belongs to (0 for RunBurst)
	src, dst   int
	nflits     int
	injectTime int64
	ejected    int

	// Fault state: which retransmission attempt this traversal is
	// (0 = first try), whether any flit was corrupted in flight, and
	// whether the packet has taken a "down" hop under up*/down* routing
	// (after which up hops are forbidden — the deadlock-freedom
	// invariant).
	attempt int
	corrupt bool
	down    bool
}

// flit is one flow-control unit. seq 0 is the head; seq nflits-1 the tail.
type flit struct {
	pkt     *packet
	seq     int
	readyAt int64 // earliest cycle the flit may traverse the switch
}

// vcState is one virtual-channel buffer of a router input port,
// implemented as a fixed ring of BufDepth slots.
type vcState struct {
	buf     []flit
	head, n int
	owner   int // unique id (packet.uid) occupying this buffer, -1 if free
	outPort int // assigned output port for the resident packet, -1 if none
	outVC   int // assigned downstream VC

	// vcAllocAt is the cycle the resident head flit was routed and won
	// its downstream VC; it feeds the Depart event's VC-stall/switch-
	// stall split and never influences simulation behaviour.
	vcAllocAt int64
}

func (v *vcState) front() *flit { return &v.buf[v.head] }

func (v *vcState) push(f flit) {
	if v.n == len(v.buf) {
		panic("noc: VC buffer overflow (credit protocol violated)")
	}
	v.buf[(v.head+v.n)%len(v.buf)] = f
	v.n++
}

func (v *vcState) pop() flit {
	f := v.buf[v.head]
	v.head = (v.head + 1) % len(v.buf)
	v.n--
	return f
}

// router is one mesh router of a single physical-channel plane.
type router struct {
	in [numPorts][]vcState
	// credits[op][vc]: free buffer slots at the downstream input VC
	// reached through output port op. The local output has no credits;
	// ejection is limited to one flit per cycle by arbitration itself.
	credits [numPorts][]int
	rrPtr   [numPorts]int // round-robin arbitration pointer per output
}

// tlInterval is one open link busy interval [start, end) being merged;
// empty when end == start.
type tlInterval struct {
	start, end int64
}

// arrival is a flit committed to move into a router buffer at the end
// of the current cycle.
type arrival struct {
	node, port, vc int
	f              flit
}

// injEntry is a packet waiting in a node's network interface.
type injEntry struct {
	p    *packet
	time int64
}

// plane is one physical channel: a full set of routers plus per-node
// injection queues.
type plane struct {
	routers   []router
	nodeQueue [][]injEntry // per-node FIFO of packets to inject
	nodeHead  []int        // index of the head packet per node
	injSeq    []int        // next flit of the head packet
	injVC     []int        // local VC claimed by the head packet (-1 none)
	pending   []arrival    // reused arrival scratch
	occ       []int64      // flits currently buffered per router
	buffered  int64        // total flits buffered across the plane (Σ occ)
}

// groupState is the per-burst-group accounting of a run. RunBurst uses
// exactly one group; a Session (see session.go) keeps several groups in
// flight on the same clock, each with its own packet-id space, fault
// salt, timeline section, result counters and lost-transfer list.
type groupState struct {
	sec  *timeline.Section
	base int64 // absolute cycle the group's section starts; events are relative to it
	salt int64 // fault salt of this group's packets
	// links is the per-(plane, node, direction) open link busy-interval
	// scratch of this group, with stamps relative to base; nil when the
	// group is untraced.
	links []tlInterval

	res       Result
	lost      []LostTransfer
	remaining int64 // packets not yet terminally resolved
	done      bool
	endCycle  int64 // absolute cycle the group resolved at (valid once done)
}

// Simulator runs message bursts over the configured NoC.
type Simulator struct {
	cfg    Config
	planes []plane
	// linkLoad[node][op-1] counts flit traversals of the link leaving
	// node through output port op (E/W/N/S), summed over planes, for
	// the most recent run (RunBurst) or session (Begin).
	linkLoad [][4]int64

	// pktArena backs the packets of the current RunBurst. RunBurst sizes
	// it up front so the injEntry pointers into it stay stable, then
	// reuses the storage on the next run. Session groups allocate their
	// own exact-size packet chunks instead.
	pktArena []packet

	// loopIters counts the drain-loop iterations of the most recent
	// run; with idle-cycle fast-forward it can be far below
	// Result.Cycles on time-sparse bursts. noFastForward disables the
	// jump so tests can compare against dense cycle-by-cycle ticking.
	loopIters     int64
	noFastForward bool

	// Burst-group state. groups[i] is group i of the current run:
	// RunBurst stores its single group in g0 to stay off the heap; a
	// Session appends one group per Inject. sess marks session mode, in
	// which a group flushes (timeline + obs) the moment its last packet
	// resolves and lands on the resolved queue for Session.Next.
	groups   []groupState
	g0       [1]groupState
	sess     bool
	live     int     // session groups injected and not yet resolved
	resolved []int32 // session groups resolved but not yet reported
	uidNext  int     // next simulator-unique packet id

	// tlNext is a section handed in via SetTimelineSection and consumed
	// by the next RunBurst; tlAuto numbers the sections auto-registered
	// on cfg.Timeline when no section is pending. tlLinks is RunBurst's
	// reusable link-interval scratch (session groups allocate per group).
	tlNext  *timeline.Section
	tlAuto  int
	tlLinks []tlInterval

	// Fault-injection state, all nil/zero when cfg.Fault is inactive so
	// the fault-free hot path is untouched (and bit-identical to the
	// pre-fault simulator).
	faultOn   bool
	budget    int           // retransmissions allowed per packet
	routes    *fault.Routes // up*/down* tables; nil without structural faults
	flaky     [][4]bool     // per-(node, dir) flit-drop eligibility; nil = all links
	slow      [][4]bool     // per-(node, dir) extra-latency links; nil = none
	faultSalt int64         // decorrelates runs sharing packet-id sequences

	// Metric handles resolved once from cfg.Obs (nil when disabled;
	// every obs operation on nil is a no-op). The fault counters are
	// registered only for active fault configs so fault-free flight
	// records keep their exact pre-fault metric set.
	latHist  *obs.Histogram // per-packet eject−inject cycles
	occGauge *obs.Gauge     // router queue-occupancy high-water
	packets  *obs.Counter
	flits    *obs.Counter
	hopsC    *obs.Counter // flit-hops across inter-router links
	retransC *obs.Counter
	lostC    *obs.Counter
	dropC    *obs.Counter
}

// New creates a simulator for cfg.
func New(cfg Config) (*Simulator, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := &Simulator{cfg: cfg}
	cfg.Timeline.SetPlatform(cfg.TimelinePlatform())
	if r := cfg.Obs; r != nil {
		s.latHist = r.Histogram("noc.packet_latency_cycles", obs.Stable, LatencyBuckets)
		s.occGauge = r.Gauge("noc.router_occupancy_high_water", obs.Stable)
		s.packets = r.Counter("noc.packets", obs.Stable)
		s.flits = r.Counter("noc.flits", obs.Stable)
		s.hopsC = r.Counter("noc.link_traversals", obs.Stable)
	}
	if f := cfg.Fault; f.Active() {
		s.faultOn = true
		s.budget = f.Budget()
		if f.Structural() {
			rt, err := fault.NewRoutes(cfg.Mesh, f)
			if err != nil {
				return nil, err
			}
			s.routes = rt
		}
		if len(f.FlakyLinks) > 0 {
			s.flaky = dirLinkSet(cfg, f.FlakyLinks)
		}
		if len(f.SlowLinks) > 0 && f.SlowExtraCycles > 0 {
			s.slow = dirLinkSet(cfg, f.SlowLinks)
		}
		if r := cfg.Obs; r != nil {
			s.retransC = r.Counter("noc.retransmits", obs.Stable)
			s.lostC = r.Counter("noc.lost_packets", obs.Stable)
			s.dropC = r.Counter("noc.dropped_flits", obs.Stable)
			r.Gauge("noc.retry_budget", obs.Stable).Set(float64(s.budget))
		}
	}
	return s, nil
}

// dirLinkSet expands an undirected link list into a per-(node, output
// direction) lookup table covering both directions of each link.
func dirLinkSet(cfg Config, links []fault.Link) [][4]bool {
	in := make(map[fault.Link]bool, len(links))
	for _, l := range links {
		in[l] = true
	}
	set := make([][4]bool, cfg.Mesh.Nodes())
	s := Simulator{cfg: cfg}
	for id := range set {
		for op := PortEast; op <= PortSouth; op++ {
			if nb := s.neighbor(id, op); nb >= 0 && in[fault.LinkBetween(id, nb)] {
				set[id][op-1] = true
			}
		}
	}
	return set
}

// MustNew is New that panics on config error (for tests and internal use).
func MustNew(cfg Config) *Simulator {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

func (s *Simulator) newPlane() plane {
	n := s.cfg.Mesh.Nodes()
	pl := plane{
		routers:   make([]router, n),
		nodeQueue: make([][]injEntry, n),
		nodeHead:  make([]int, n),
		injSeq:    make([]int, n),
		injVC:     make([]int, n),
		occ:       make([]int64, n),
	}
	for i := range pl.routers {
		r := &pl.routers[i]
		for p := 0; p < numPorts; p++ {
			r.in[p] = make([]vcState, s.cfg.VCs)
			for v := range r.in[p] {
				r.in[p][v] = vcState{buf: make([]flit, s.cfg.BufDepth), owner: -1, outPort: -1}
			}
			r.credits[p] = make([]int, s.cfg.VCs)
			for v := range r.credits[p] {
				r.credits[p][v] = s.cfg.BufDepth
			}
		}
		pl.injVC[i] = -1
	}
	return pl
}

// reset restores the simulator's network state for a fresh run,
// reusing the plane, router, and link-load storage of earlier runs so
// repeated RunBurst calls stay off the heap.
func (s *Simulator) reset() {
	s.loopIters = 0
	s.uidNext = 0
	s.live = 0
	s.resolved = s.resolved[:0]
	if s.planes == nil {
		s.planes = make([]plane, s.cfg.Planes)
		for p := range s.planes {
			s.planes[p] = s.newPlane()
		}
		s.linkLoad = make([][4]int64, s.cfg.Mesh.Nodes())
		return
	}
	for p := range s.planes {
		pl := &s.planes[p]
		for i := range pl.routers {
			r := &pl.routers[i]
			for prt := 0; prt < numPorts; prt++ {
				for v := range r.in[prt] {
					vc := &r.in[prt][v]
					vc.head, vc.n = 0, 0
					vc.owner, vc.outPort, vc.outVC = -1, -1, 0
				}
				for v := range r.credits[prt] {
					r.credits[prt][v] = s.cfg.BufDepth
				}
				r.rrPtr[prt] = 0
			}
			pl.nodeQueue[i] = pl.nodeQueue[i][:0]
			pl.nodeHead[i] = 0
			pl.injSeq[i] = 0
			pl.injVC[i] = -1
			pl.occ[i] = 0
		}
		pl.buffered = 0
		pl.pending = pl.pending[:0]
	}
	clear(s.linkLoad)
}

// fastForwardTarget reports whether the network is completely idle at
// cycle now — no flit buffered on any plane and no packet eligible to
// inject — and, if so, the cycle of the earliest pending injection.
// Between cycles every in-flight flit sits in some router buffer
// (arrivals commit within the cycle that launched them), so
// buffered == 0 on all planes means the only future events are
// injections still gated on their timestamps.
func (s *Simulator) fastForwardTarget(now int64) (int64, bool) {
	for p := range s.planes {
		if s.planes[p].buffered != 0 {
			return 0, false
		}
	}
	next := int64(-1)
	for p := range s.planes {
		pl := &s.planes[p]
		for node, q := range pl.nodeQueue {
			h := pl.nodeHead[node]
			if h >= len(q) {
				continue
			}
			t := q[h].time
			if t <= now {
				return 0, false
			}
			if next == -1 || t < next {
				next = t
			}
		}
	}
	return next, next > now
}

// LoopIters returns how many drain-loop iterations the most recent
// RunBurst executed. With idle-cycle fast-forward this can be far
// smaller than Result.Cycles on time-sparse bursts; it measures the
// simulator's own cost, not a network property, so it lives outside
// Result.
func (s *Simulator) LoopIters() int64 { return s.loopIters }

// neighbor returns the node reached through output port op of node id,
// or -1 if op is Local or leads off-mesh.
func (s *Simulator) neighbor(id, op int) int {
	c := s.cfg.Mesh.Coord(id)
	switch op {
	case PortEast:
		if c.X+1 < s.cfg.Mesh.W {
			return id + 1
		}
	case PortWest:
		if c.X > 0 {
			return id - 1
		}
	case PortNorth:
		if c.Y > 0 {
			return id - s.cfg.Mesh.W
		}
	case PortSouth:
		if c.Y+1 < s.cfg.Mesh.H {
			return id + s.cfg.Mesh.W
		}
	}
	return -1
}

// opposite maps an output port to the input port it feeds downstream.
func opposite(op int) int {
	switch op {
	case PortEast:
		return PortWest
	case PortWest:
		return PortEast
	case PortNorth:
		return PortSouth
	case PortSouth:
		return PortNorth
	}
	panic("noc: opposite of local port")
}

// routeXY returns the output port a packet at node cur takes toward dst
// under dimension-ordered routing (X first).
func (s *Simulator) routeXY(cur, dst int) int {
	cc := s.cfg.Mesh.Coord(cur)
	cd := s.cfg.Mesh.Coord(dst)
	switch {
	case cc.X < cd.X:
		return PortEast
	case cc.X > cd.X:
		return PortWest
	case cc.Y < cd.Y:
		return PortSouth
	case cc.Y > cd.Y:
		return PortNorth
	}
	return PortLocal
}

// routePort returns the output port a packet at node cur takes, and
// whether that hop is a "down" move under up*/down* routing. Without
// structural faults the routing function is exactly the fault-free XY
// one; the switch is all-or-nothing because mixing two individually
// deadlock-free routing functions can deadlock.
func (s *Simulator) routePort(cur int, p *packet) (op int, isDown bool) {
	if s.routes == nil {
		return s.routeXY(cur, p.dst), false
	}
	if cur == p.dst {
		return PortLocal, false
	}
	dir, down, ok := s.routes.NextDir(cur, p.dst, p.down)
	if !ok {
		panic("noc: in-flight packet lost reachability (route table inconsistent)")
	}
	return int(dir) + 1, down
}

// SetFaultSalt folds salt into every subsequent fault decision. Callers
// running many bursts with identical packet-id sequences (internal/cmp
// uses the layer index) set it so faults decorrelate across bursts
// while staying independent of host scheduling and worker count.
// Session groups carry their salt explicitly via Session.Inject.
func (s *Simulator) SetFaultSalt(salt int64) { s.faultSalt = salt }

// SetTimelineSection hands the simulator the timeline section the next
// RunBurst should record into. Callers that own a sink and register
// sections in a deterministic order (internal/cmp registers one per
// layer before its parallel loop) use this instead of Config.Timeline;
// passing a nil section is a no-op recording. The section is consumed
// by the next run.
func (s *Simulator) SetTimelineSection(sec *timeline.Section) { s.tlNext = sec }

// linkScratchSize is the length of a group's per-(plane, node,
// direction) link-interval scratch.
func (s *Simulator) linkScratchSize() int {
	return s.cfg.Planes * s.cfg.Mesh.Nodes() * 4
}

// linkBusy merges the 1-cycle link traversal at now into the open busy
// interval of link (plane pi, node, output port op) of group g,
// flushing the previous interval when a gap appears. Caller guarantees
// g.sec != nil. Stamps are relative to the group's base.
func (s *Simulator) linkBusy(g *groupState, pi, node, op int, now int64) {
	rel := now - g.base
	iv := &g.links[(pi*s.cfg.Mesh.Nodes()+node)*4+op-1]
	if iv.end == rel && iv.end > iv.start {
		iv.end = rel + 1
		return
	}
	if iv.end > iv.start {
		g.sec.LinkBusy(iv.start, iv.end, pi, node, op)
	}
	iv.start, iv.end = rel, rel+1
}

// flushGroupTimeline flushes the group's open link intervals (in
// deterministic index order) and stamps its drain time.
func (s *Simulator) flushGroupTimeline(g *groupState) {
	if g.sec == nil {
		return
	}
	nodes := s.cfg.Mesh.Nodes()
	for i := range g.links {
		if iv := &g.links[i]; iv.end > iv.start {
			g.sec.LinkBusy(iv.start, iv.end, i/(nodes*4), i/4%nodes, i%4+1)
		}
	}
	g.sec.SetComm(g.res.Cycles)
}

// flushGroupObs folds the group's counters into the obs registry.
func (s *Simulator) flushGroupObs(g *groupState) {
	s.packets.Add(g.res.Packets)
	s.flits.Add(g.res.Flits)
	s.hopsC.Add(g.res.LinkTraversals)
	s.occGauge.SetMax(float64(g.res.MaxRouterOccupancy))
	s.retransC.Add(g.res.Retransmits)
	s.lostC.Add(g.res.LostPackets)
	s.dropC.Add(g.res.DroppedFlits)
}

// resolveGroup marks session group gi fully drained at absolute cycle
// end and queues it for Session.Next. Timeline and obs flush here — the
// group's flits are all terminal, so its event stream is complete.
func (s *Simulator) resolveGroup(gi int32, end int64) {
	g := &s.groups[gi]
	g.done = true
	g.endCycle = end
	g.res.Cycles = end - g.base
	s.flushGroupTimeline(g)
	s.flushGroupObs(g)
	s.resolved = append(s.resolved, gi)
	if g.res.Packets > 0 {
		s.live--
	}
}

// packetResolved retires one packet of group gi at cycle now. In
// session mode, the group resolves the moment its last packet does.
func (s *Simulator) packetResolved(gi int32, now int64) {
	g := &s.groups[gi]
	g.remaining--
	if s.sess && g.remaining == 0 {
		s.resolveGroup(gi, now+1)
	}
}

// LostTransfers returns the deduplicated, sorted (Src, Dst) pairs whose
// transfers the most recent RunBurst failed to deliver.
func (s *Simulator) LostTransfers() []LostTransfer {
	if len(s.groups) == 0 {
		return nil
	}
	return dedupLost(s.groups[0].lost)
}

// dedupLost returns a sorted, deduplicated copy of l (nil when empty).
func dedupLost(l []LostTransfer) []LostTransfer {
	if len(l) == 0 {
		return nil
	}
	out := append([]LostTransfer(nil), l...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Dst < out[j].Dst
	})
	w := 1
	for _, t := range out[1:] {
		if t != out[w-1] {
			out[w] = t
			w++
		}
	}
	return out[:w]
}

// loseMessage records an undeliverable message (endpoints disconnected
// by structural faults) in group g without ever injecting it.
func (s *Simulator) loseMessage(g *groupState, m Message) {
	g.res.LostPackets += int64(PacketsForBytes(s.cfg, m.Bytes))
	g.res.LostFlits += int64(flitsForBytes(s.cfg, m.Bytes))
	g.lost = append(g.lost, LostTransfer{Src: m.Src, Dst: m.Dst})
	g.sec.Lost(0, -1, 0, m.Src, m.Src, m.Dst)
}

// resolveCorrupt handles a packet whose tail ejected with a corrupt
// end-to-end check: schedule a retransmission if budget remains,
// otherwise declare the packet — and its transfer — lost. Returns true
// when the packet is terminally resolved, false when it goes around
// again.
func (s *Simulator) resolveCorrupt(pl *plane, p *packet, now int64, g *groupState) bool {
	if p.attempt < s.budget {
		p.attempt++
		p.ejected = 0
		p.corrupt = false
		p.down = false
		p.injectTime = now + 1 + s.cfg.Fault.Backoff(p.attempt)
		g.res.Retransmits++
		g.res.Flits += int64(p.nflits)
		q := append(pl.nodeQueue[p.src], injEntry{p, p.injectTime})
		pl.nodeQueue[p.src] = q
		// Re-sort only the unconsumed tail: the backoff time is in the
		// future, so the entry can never displace a head packet that is
		// mid-injection.
		sortInjQueue(q[pl.nodeHead[p.src]:])
		g.sec.Retx(now+1-g.base, p.injectTime-g.base, p.id, p.attempt, p.dst)
		return false
	}
	g.res.LostPackets++
	g.res.LostFlits += int64(p.nflits)
	g.lost = append(g.lost, LostTransfer{Src: p.src, Dst: p.dst})
	g.sec.Lost(now+1-g.base, p.id, p.attempt, p.dst, p.src, p.dst)
	return true
}

// buildGroup validates msgs and appends their packets to group gi,
// entering them into the per-node injection queues. Packet ids are
// group-local (restarting at 0, matching an independent RunBurst);
// uids are simulator-unique. at shifts every message's Time stamp.
// arena must hold exactly the packets counted by countPackets.
func (s *Simulator) buildGroup(gi int32, msgs []Message, at int64, arena []packet) {
	g := &s.groups[gi]
	payload := s.cfg.PayloadPerPacket()
	id := 0
	for _, m := range msgs {
		if m.Src == m.Dst || m.Bytes <= 0 {
			continue
		}
		if s.routes != nil && !s.routes.Reachable(m.Src, m.Dst) {
			s.loseMessage(g, m)
			continue
		}
		remaining := m.Bytes
		for remaining > 0 {
			chunk := remaining
			if chunk > payload {
				chunk = payload
			}
			nf := 1 + (chunk+s.cfg.FlitBytes-1)/s.cfg.FlitBytes
			pk := &arena[id]
			*pk = packet{id: id, uid: s.uidNext, group: gi,
				src: m.Src, dst: m.Dst, nflits: nf, injectTime: at + m.Time}
			s.uidNext++
			pl := &s.planes[id%s.cfg.Planes]
			pl.nodeQueue[m.Src] = append(pl.nodeQueue[m.Src], injEntry{pk, pk.injectTime})
			id++
			remaining -= chunk
			g.res.Packets++
			g.res.Flits += int64(nf)
		}
	}
	g.remaining = g.res.Packets
}

// countPackets validates msgs against the mesh and returns how many
// packets they occupy (unreachable and no-traffic messages excluded).
func (s *Simulator) countPackets(msgs []Message) (int, error) {
	need := 0
	for _, m := range msgs {
		if m.Src == m.Dst || m.Bytes <= 0 {
			continue
		}
		if m.Src < 0 || m.Src >= s.cfg.Mesh.Nodes() || m.Dst < 0 || m.Dst >= s.cfg.Mesh.Nodes() {
			return 0, fmt.Errorf("noc: message %+v outside %dx%d mesh", m, s.cfg.Mesh.W, s.cfg.Mesh.H)
		}
		if s.routes != nil && !s.routes.Reachable(m.Src, m.Dst) {
			continue // recorded as lost in the build pass
		}
		need += PacketsForBytes(s.cfg, m.Bytes)
	}
	return need, nil
}

// RunBurst injects all messages at their Time stamps (0 for a layer-
// transition burst) and simulates until the network drains, returning
// aggregate statistics. Zero-byte and self-addressed messages carry no
// traffic and are skipped.
func (s *Simulator) RunBurst(msgs []Message) (Result, error) {
	s.reset()
	s.sess = false
	sec := s.tlNext
	s.tlNext = nil
	if sec == nil && s.cfg.Timeline != nil {
		sec = s.cfg.Timeline.Section(fmt.Sprintf("burst%03d", s.tlAuto))
		s.tlAuto++
	}
	s.g0[0] = groupState{sec: sec, lost: s.g0[0].lost[:0], salt: s.faultSalt}
	s.groups = s.g0[:1]
	g := &s.groups[0]
	if sec != nil {
		if need := s.linkScratchSize(); len(s.tlLinks) != need {
			s.tlLinks = make([]tlInterval, need)
		} else {
			clear(s.tlLinks)
		}
		g.links = s.tlLinks
	}

	// Validate and count packets first so the arena can be sized in one
	// shot: injEntry keeps pointers into it, so it must not grow while
	// packets are being appended.
	need, err := s.countPackets(msgs)
	if err != nil {
		return Result{}, err
	}
	if cap(s.pktArena) < need {
		s.pktArena = make([]packet, need)
	}
	s.pktArena = s.pktArena[:need]

	s.buildGroup(0, msgs, 0, s.pktArena)
	if g.res.Packets == 0 {
		s.lostC.Add(g.res.LostPackets)
		s.flushGroupTimeline(g)
		return g.res, nil
	}
	for p := range s.planes {
		for n := range s.planes[p].nodeQueue {
			sortInjQueue(s.planes[p].nodeQueue[n])
		}
	}

	var now int64
	for g.remaining > 0 {
		if now > s.cfg.MaxCycles {
			return Result{}, fmt.Errorf("noc: burst did not drain within %d cycles", s.cfg.MaxCycles)
		}
		s.loopIters++
		for p := range s.planes {
			s.stepPlane(&s.planes[p], p, now)
		}
		now++
		// Idle-cycle fast-forward: when no flit is buffered anywhere and
		// no node may inject yet, every skipped cycle is a no-op (stepPlane
		// touches nothing), so jump straight to the next injection time.
		// The cap keeps the MaxCycles overrun check firing exactly as the
		// dense loop would.
		if !s.noFastForward && g.remaining > 0 {
			if next, ok := s.fastForwardTarget(now); ok {
				if next > s.cfg.MaxCycles+1 {
					next = s.cfg.MaxCycles + 1
				}
				now = next
			}
		}
	}
	g.res.Cycles = now
	s.flushGroupTimeline(g)
	s.flushGroupObs(g)
	return g.res, nil
}

// stepPlane advances one plane (index pi) by one cycle. Terminal packet
// events (intact ejection, loss) retire packets from their group via
// packetResolved.
func (s *Simulator) stepPlane(pl *plane, pi int, now int64) {
	pending := pl.pending[:0]

	// Switch allocation and traversal: one grant per output port, at
	// most one flit per input port.
	for rid := range pl.routers {
		r := &pl.routers[rid]
		var usedIn [numPorts]bool
		for op := 0; op < numPorts; op++ {
			granted := false
			nCand := numPorts * s.cfg.VCs
			for k := 0; k < nCand && !granted; k++ {
				slot := (r.rrPtr[op] + k) % nCand
				ip := slot / s.cfg.VCs
				v := slot % s.cfg.VCs
				if usedIn[ip] {
					continue
				}
				vc := &r.in[ip][v]
				if vc.n == 0 {
					continue
				}
				f := *vc.front()
				if f.readyAt > now {
					continue
				}
				// Route computation + VC allocation for head flits.
				if vc.outPort == -1 {
					if f.seq != 0 {
						panic("noc: body flit in unrouted VC")
					}
					want, wantDown := s.routePort(rid, f.pkt)
					if want != op {
						continue
					}
					if op == PortLocal {
						vc.outPort = op
						vc.outVC = 0
					} else {
						dn := s.neighbor(rid, op)
						dvc := s.allocVC(pl, dn, opposite(op), f.pkt.uid)
						if dvc == -1 {
							continue // no free downstream VC yet
						}
						vc.outPort = op
						vc.outVC = dvc
					}
					// The hop is committed; latch the phase change so the
					// downstream route computation sees it.
					if wantDown {
						f.pkt.down = true
					}
					vc.vcAllocAt = now
				}
				if vc.outPort != op {
					continue
				}
				if op != PortLocal && r.credits[op][vc.outVC] == 0 {
					continue
				}

				// Grant: pop and traverse.
				g := &s.groups[f.pkt.group]
				if g.sec != nil && f.seq == 0 {
					g.sec.Depart(now-g.base, vc.vcAllocAt-g.base, f.pkt.id, f.pkt.attempt, rid, op, pi)
				}
				vc.pop()
				pl.occ[rid]--
				pl.buffered--
				g.res.BufferReads++
				g.res.SwitchTraversals++
				usedIn[ip] = true
				granted = true
				r.rrPtr[op] = (slot + 1) % nCand

				// Credit return to the upstream hop (local injection
				// reads buffer occupancy directly instead).
				if ip != PortLocal {
					up := s.neighbor(rid, ip)
					pl.routers[up].credits[opposite(ip)][v]++
				}
				isTail := f.seq == f.pkt.nflits-1
				outVC := vc.outVC
				if isTail {
					vc.outPort = -1
					vc.owner = -1
				}
				if op == PortLocal {
					f.pkt.ejected++
					if isTail {
						if f.pkt.corrupt {
							if s.resolveCorrupt(pl, f.pkt, now, g) {
								s.packetResolved(f.pkt.group, now)
							}
						} else {
							g.sec.Eject(now+1-g.base, f.pkt.id, f.pkt.attempt, rid)
							lat := now + 1 - f.pkt.injectTime
							g.res.TotalPacketLatency += lat
							if lat > g.res.MaxPacketLatency {
								g.res.MaxPacketLatency = lat
							}
							g.res.EjectedPackets++
							s.latHist.Observe(lat)
							s.packetResolved(f.pkt.group, now)
						}
					}
				} else {
					dn := s.neighbor(rid, op)
					r.credits[op][outVC]--
					g.res.LinkTraversals++
					s.linkLoad[rid][op-1]++
					if g.sec != nil {
						s.linkBusy(g, pi, rid, op, now)
					}
					f.readyAt = now + 1 + int64(s.cfg.Stages-1)
					if s.faultOn {
						if s.slow != nil && s.slow[rid][op-1] {
							f.readyAt += int64(s.cfg.Fault.SlowExtraCycles)
						}
						fc := s.cfg.Fault
						if fc.DropProb > 0 && (s.flaky == nil || s.flaky[rid][op-1]) &&
							fc.DropFlit(g.salt, int64(f.pkt.id), f.pkt.attempt, rid*4+(op-1), f.seq) {
							f.pkt.corrupt = true
							g.res.DroppedFlits++
						}
					}
					pending = append(pending, arrival{dn, opposite(op), outVC, f})
				}
			}
		}
	}

	// Injection: one flit per node per cycle from the NI into the
	// local input port.
	for node := range pl.nodeQueue {
		h := pl.nodeHead[node]
		if h >= len(pl.nodeQueue[node]) {
			continue
		}
		e := pl.nodeQueue[node][h]
		if e.time > now {
			continue
		}
		if pl.injVC[node] == -1 {
			v := s.allocVC(pl, node, PortLocal, e.p.uid)
			if v == -1 {
				continue
			}
			pl.injVC[node] = v
			pl.injSeq[node] = 0
		}
		v := pl.injVC[node]
		vc := &pl.routers[node].in[PortLocal][v]
		if vc.n >= s.cfg.BufDepth {
			continue
		}
		g := &s.groups[e.p.group]
		if g.sec != nil && pl.injSeq[node] == 0 {
			g.sec.Inject(now-g.base, e.p.injectTime-g.base, e.p.id, e.p.attempt, e.p.src, e.p.dst, e.p.nflits)
		}
		vc.push(flit{pkt: e.p, seq: pl.injSeq[node], readyAt: now + int64(s.cfg.Stages-1)})
		pl.occ[node]++
		pl.buffered++
		if pl.occ[node] > g.res.MaxRouterOccupancy {
			g.res.MaxRouterOccupancy = pl.occ[node]
		}
		g.res.BufferWrites++
		pl.injSeq[node]++
		if pl.injSeq[node] == e.p.nflits {
			pl.nodeHead[node]++
			pl.injVC[node] = -1
			pl.injSeq[node] = 0
		}
	}

	// Commit link arrivals.
	for _, a := range pending {
		vc := &pl.routers[a.node].in[a.port][a.vc]
		if vc.owner != a.f.pkt.uid {
			panic("noc: flit arrived at VC owned by another packet")
		}
		g := &s.groups[a.f.pkt.group]
		if g.sec != nil && a.f.seq == 0 {
			g.sec.Arrive(now+1-g.base, a.f.pkt.id, a.f.pkt.attempt, a.node, a.port, a.vc, pi)
		}
		vc.push(a.f)
		pl.occ[a.node]++
		pl.buffered++
		if pl.occ[a.node] > g.res.MaxRouterOccupancy {
			g.res.MaxRouterOccupancy = pl.occ[a.node]
		}
		g.res.BufferWrites++
	}
	pl.pending = pending[:0]
}

// allocVC finds (or confirms) a VC at node/port for the packet with
// unique id uid: if the packet already owns one it is returned;
// otherwise a free, empty VC is claimed. Returns -1 if none is
// available.
func (s *Simulator) allocVC(pl *plane, node, port, uid int) int {
	vcs := pl.routers[node].in[port]
	for v := range vcs {
		if vcs[v].owner == uid {
			return v
		}
	}
	for v := range vcs {
		if vcs[v].owner == -1 && vcs[v].n == 0 {
			vcs[v].owner = uid
			return v
		}
	}
	return -1
}
