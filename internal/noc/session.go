package noc

import (
	"fmt"

	"learn2scale/internal/timeline"
)

// Session runs many message bursts ("groups") on one simulated clock,
// letting them overlap in the network — the substrate of the pipelined
// CMP scheduler (internal/cmp.RunPipeline), where one stage's transfer
// burst drains while another stage's next burst is already in flight.
//
// The contract mirrors RunBurst per group: each group gets its own
// packet-id space (ids restart at 0), fault salt, timeline section
// (event stamps relative to the group's inject cycle) and Result, so a
// session whose groups happen to run strictly one after another is
// bit-identical — results, obs metrics, timeline events — to the same
// bursts run through independent RunBurst calls. Two mechanisms carry
// that equivalence:
//
//   - Idle renormalization: when a new group is injected into a
//     completely quiescent network (no flit buffered, every NI queue
//     consumed), the round-robin arbitration pointers reset and the
//     consumed queue tails are dropped, leaving state indistinguishable
//     from a freshly reset simulator. Renormalization never fires while
//     anything is in flight, so overlapping groups keep exact shared-
//     resource contention.
//   - Unique VC ownership: groups reuse packet ids, so virtual-channel
//     buffers are claimed by a simulator-unique uid instead of the id.
//
// A Session is single-threaded and is invalidated by the next
// Begin/RunBurst call on the simulator.
type Session struct {
	sim *Simulator
	now int64
}

// Begin resets the simulator and starts a session. Any previous
// session or RunBurst state is discarded.
func (s *Simulator) Begin() *Session {
	s.reset()
	s.sess = true
	s.groups = s.groups[:0]
	return &Session{sim: s}
}

// Now returns the session clock: every cycle before it has been fully
// simulated. Next advances it; Inject never does.
func (ss *Session) Now() int64 { return ss.now }

// Inject schedules one burst group: msgs enter their source NI queues
// at absolute cycle at (plus each message's own Time offset), faulted
// under salt, traced into sec (nil = untraced; stamps are relative to
// at). Returns the group id. A group whose messages carry no traffic —
// empty, filtered, or all lost to disconnected endpoints — resolves
// immediately at cycle at.
func (ss *Session) Inject(msgs []Message, at, salt int64, sec *timeline.Section) (int, error) {
	s := ss.sim
	if !s.sess {
		return 0, fmt.Errorf("noc: Inject outside a session (call Begin first)")
	}
	if at < ss.now {
		return 0, fmt.Errorf("noc: session inject at cycle %d, clock already at %d", at, ss.now)
	}
	s.maybeRenormalize()
	need, err := s.countPackets(msgs)
	if err != nil {
		return 0, err
	}
	gi := int32(len(s.groups))
	s.groups = append(s.groups, groupState{sec: sec, base: at, salt: salt})
	g := &s.groups[gi]
	if sec != nil {
		g.links = make([]tlInterval, s.linkScratchSize())
	}
	// Each group gets its own exact-size arena: the injection queues
	// hold pointers into it, and queues of concurrent groups outlive any
	// shared scratch.
	s.buildGroup(gi, msgs, at, make([]packet, need))
	if g.res.Packets == 0 {
		s.resolveGroup(gi, at)
		return int(gi), nil
	}
	s.live++
	// Re-sort the unconsumed queue tails so the new entries merge by
	// (time, id). A head packet that is mid-injection (injSeq > 0) is
	// pinned: its time is in the past, but a same-cycle tie against a
	// fresh group's id 0 could otherwise displace it.
	for p := range s.planes {
		pl := &s.planes[p]
		for n := range pl.nodeQueue {
			from := pl.nodeHead[n]
			if pl.injSeq[n] > 0 {
				from++
			}
			if tail := pl.nodeQueue[n][from:]; len(tail) > 1 {
				sortInjQueue(tail)
			}
		}
	}
	return int(gi), nil
}

// Next advances the simulation until some group fully resolves (every
// packet delivered or terminally lost) and returns its id and the
// absolute cycle it resolved at. Groups that resolved while an earlier
// Next was stepping are reported first, in resolution order. It is an
// error to call Next with no unresolved groups outstanding, or for the
// session clock to exceed the config's MaxCycles.
func (ss *Session) Next() (group int, end int64, err error) {
	s := ss.sim
	if !s.sess {
		return 0, 0, fmt.Errorf("noc: Next outside a session (call Begin first)")
	}
	for len(s.resolved) == 0 {
		if s.live == 0 {
			return 0, 0, fmt.Errorf("noc: session has no unresolved groups")
		}
		if ss.now > s.cfg.MaxCycles {
			return 0, 0, fmt.Errorf("noc: session did not resolve a group within %d cycles", s.cfg.MaxCycles)
		}
		s.loopIters++
		for p := range s.planes {
			s.stepPlane(&s.planes[p], p, ss.now)
		}
		ss.now++
		// Idle-cycle fast-forward, exactly as in RunBurst: skipped
		// cycles are provable no-ops.
		if !s.noFastForward && len(s.resolved) == 0 {
			if next, ok := s.fastForwardTarget(ss.now); ok {
				if next > s.cfg.MaxCycles+1 {
					next = s.cfg.MaxCycles + 1
				}
				ss.now = next
			}
		}
	}
	gi := s.resolved[0]
	s.resolved = s.resolved[1:]
	// A zero-traffic group's endCycle (its inject cycle) may lie ahead
	// of the session clock; the clock stays put — those cycles still
	// need simulating for the groups that do carry traffic.
	return int(gi), s.groups[gi].endCycle, nil
}

// Result returns the resolved group's statistics. Cycles is the
// group's own drain time (end − inject cycle). Calling it on an
// unresolved group returns the partial counts accumulated so far.
func (ss *Session) Result(group int) Result {
	return ss.sim.groups[group].res
}

// Lost returns the deduplicated, sorted (Src, Dst) transfers of the
// group that the network failed to deliver.
func (ss *Session) Lost(group int) []LostTransfer {
	return dedupLost(ss.sim.groups[group].lost)
}

// maybeRenormalize resets arbitration state when the network is
// completely quiescent: no flit buffered on any plane and every NI
// queue fully consumed. Credits, VC ownership and injection state are
// already back at their initial values by the flow-control invariants
// (every buffered flit was popped, returning its credit; tails release
// VC ownership), so after the reset the simulator is indistinguishable
// from a freshly constructed one — the property that makes strictly
// sequential session groups bit-identical to independent RunBursts.
// It never fires mid-flight, so overlapping groups are untouched.
func (s *Simulator) maybeRenormalize() {
	for p := range s.planes {
		pl := &s.planes[p]
		if pl.buffered != 0 {
			return
		}
		for n, q := range pl.nodeQueue {
			if pl.nodeHead[n] < len(q) {
				return
			}
		}
	}
	for p := range s.planes {
		pl := &s.planes[p]
		for i := range pl.routers {
			r := &pl.routers[i]
			for prt := 0; prt < numPorts; prt++ {
				r.rrPtr[prt] = 0
			}
			pl.nodeQueue[i] = pl.nodeQueue[i][:0]
			pl.nodeHead[i] = 0
		}
	}
}
