package noc

import (
	"reflect"
	"testing"

	"learn2scale/internal/fault"
	"learn2scale/internal/topology"
)

func allPairsMsgs(m topology.Mesh, bytes int) []Message {
	var msgs []Message
	for s := 0; s < m.Nodes(); s++ {
		for d := 0; d < m.Nodes(); d++ {
			if s != d {
				msgs = append(msgs, Message{Src: s, Dst: d, Bytes: bytes})
			}
		}
	}
	return msgs
}

// An inactive fault config must be bit-identical to no fault layer at
// all — the zero-fault anchor every sweep row at rate 0 rests on.
func TestZeroFaultBitIdentical(t *testing.T) {
	msgs := allPairsMsgs(topology.NewMesh(4, 4), 900)
	base := mustRun(t, cfg4x4(), msgs)
	for _, fc := range []*fault.Config{
		{},
		{Seed: 99},
		fault.Scenario(0, 7),
		{Seed: 1, RetryBudget: 5, RetryBackoff: 64}, // retry policy without faults
	} {
		cfg := cfg4x4()
		cfg.Fault = fc
		got := mustRun(t, cfg, msgs)
		if !reflect.DeepEqual(base, got) {
			t.Errorf("inactive fault config %+v changed the result:\nbase %+v\ngot  %+v", *fc, base, got)
		}
	}
}

// Transient faults over a seeded ascending rate grid: retransmissions
// and corrupted flits must be non-decreasing in the fault rate, and a
// faulted run must still deliver or account for every packet. The grid
// and seed are pinned; fault decisions are threshold-coupled across
// rates, which is what makes the monotone sweep possible at all.
func TestTransientFaultMonotoneGrid(t *testing.T) {
	msgs := allPairsMsgs(topology.NewMesh(4, 4), 900)
	var prev Result
	for i, rate := range []float64{0, 0.01, 0.02, 0.05, 0.1, 0.2} {
		cfg := cfg4x4()
		cfg.Fault = fault.Scenario(rate, 5)
		res := mustRun(t, cfg, msgs)
		if res.Packets != int64(len(msgs)) {
			t.Fatalf("rate %g: %d packets counted, want %d", rate, res.Packets, len(msgs))
		}
		if rate == 0 && (res.Retransmits != 0 || res.DroppedFlits != 0 || res.LostPackets != 0) {
			t.Fatalf("zero rate produced fault events: %+v", res)
		}
		if i > 0 {
			if res.DroppedFlits < prev.DroppedFlits {
				t.Errorf("rate %g: dropped flits %d < %d at the previous rate",
					rate, res.DroppedFlits, prev.DroppedFlits)
			}
			if res.Retransmits+res.LostPackets < prev.Retransmits+prev.LostPackets {
				t.Errorf("rate %g: retransmits+losses %d < %d at the previous rate",
					rate, res.Retransmits+res.LostPackets, prev.Retransmits+prev.LostPackets)
			}
			if res.Cycles < prev.Cycles {
				t.Errorf("rate %g: drain %d cycles faster than rate below it (%d)",
					rate, res.Cycles, prev.Cycles)
			}
		}
		prev = res
	}
}

// Determinism of the faulted simulator: same config, same burst, same
// result — including the lost-transfer list.
func TestFaultedRunDeterministic(t *testing.T) {
	msgs := allPairsMsgs(topology.NewMesh(4, 4), 1800)
	cfg := cfg4x4()
	cfg.Fault = fault.Scenario(0.15, 3)
	s := MustNew(cfg)
	a, err := s.RunBurst(msgs)
	if err != nil {
		t.Fatal(err)
	}
	lostA := s.LostTransfers()
	b, err := s.RunBurst(msgs)
	if err != nil {
		t.Fatal(err)
	}
	lostB := s.LostTransfers()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("repeated faulted runs differ:\n%+v\n%+v", a, b)
	}
	if !reflect.DeepEqual(lostA, lostB) {
		t.Errorf("lost transfers differ: %v vs %v", lostA, lostB)
	}
	if a.LostPackets > 0 && len(lostA) == 0 {
		t.Error("packets lost but no lost transfers reported")
	}
	for i := 1; i < len(lostA); i++ {
		if lostA[i-1].Src > lostA[i].Src ||
			(lostA[i-1].Src == lostA[i].Src && lostA[i-1].Dst >= lostA[i].Dst) {
			t.Fatalf("lost transfers not sorted/deduped: %v", lostA)
		}
	}
}

// Disabling retransmission (negative budget) must lose every corrupted
// packet instead of retrying it.
func TestRetryBudgetDisabled(t *testing.T) {
	msgs := allPairsMsgs(topology.NewMesh(4, 4), 900)
	cfg := cfg4x4()
	cfg.Fault = &fault.Config{Seed: 5, DropProb: 0.2, RetryBudget: -1}
	res := mustRun(t, cfg, msgs)
	if res.Retransmits != 0 {
		t.Errorf("disabled retransmission still retransmitted %d packets", res.Retransmits)
	}
	if res.LostPackets == 0 {
		t.Error("20% flit drops with no retries lost nothing")
	}
}

// A higher retry budget converts losses into retransmissions.
func TestRetryBudgetReducesLosses(t *testing.T) {
	msgs := allPairsMsgs(topology.NewMesh(4, 4), 1800)
	run := func(budget int) Result {
		cfg := cfg4x4()
		cfg.Fault = &fault.Config{Seed: 5, DropProb: 0.2, RetryBudget: budget}
		return mustRun(t, cfg, msgs)
	}
	small, large := run(1), run(8)
	if small.LostPackets == 0 {
		t.Fatal("budget 1 at 20% drops lost nothing; grid no longer stresses the budget")
	}
	if large.LostPackets >= small.LostPackets {
		t.Errorf("budget 8 lost %d packets, budget 1 lost %d — budget does not help",
			large.LostPackets, small.LostPackets)
	}
	if large.Retransmits <= small.Retransmits {
		t.Errorf("budget 8 retransmitted %d <= budget 1's %d", large.Retransmits, small.Retransmits)
	}
}

// Structural faults: traffic re-routes around a dead link and the run
// still drains with every packet delivered; the flit count is
// conserved but link traversals may exceed the XY minimum.
func TestDeadLinkReroutes(t *testing.T) {
	m := topology.NewMesh(4, 4)
	msgs := allPairsMsgs(m, 900)
	cfg := cfg4x4()
	cfg.Fault = &fault.Config{DeadLinks: []fault.Link{{A: 5, B: 6}, {A: 9, B: 10}}}
	res := mustRun(t, cfg, msgs)
	if res.Packets != int64(len(msgs)) || res.LostPackets != 0 {
		t.Fatalf("connected survivor mesh lost traffic: %+v", res)
	}
	var wantFlits int64
	for _, msg := range msgs {
		wantFlits += int64(flitsForBytes(cfg, msg.Bytes))
	}
	if res.Flits != wantFlits {
		t.Errorf("flits = %d, want %d", res.Flits, wantFlits)
	}
	base := mustRun(t, cfg4x4(), msgs)
	if res.LinkTraversals < base.LinkTraversals {
		t.Errorf("re-routed traversals %d below the XY minimum %d",
			res.LinkTraversals, base.LinkTraversals)
	}
}

// A dead router loses exactly the transfers touching it; the rest of
// the burst drains normally.
func TestDeadRouterLosesItsTransfers(t *testing.T) {
	m := topology.NewMesh(4, 4)
	msgs := allPairsMsgs(m, 900)
	cfg := cfg4x4()
	cfg.Fault = &fault.Config{DeadRouters: []int{5}}
	s := MustNew(cfg)
	res, err := s.RunBurst(msgs)
	if err != nil {
		t.Fatal(err)
	}
	lost := s.LostTransfers()
	// 15 transfers out of node 5 plus 15 into it.
	if len(lost) != 30 {
		t.Fatalf("%d lost transfers, want 30: %v", len(lost), lost)
	}
	for _, l := range lost {
		if l.Src != 5 && l.Dst != 5 {
			t.Errorf("lost transfer %v does not touch the dead router", l)
		}
	}
	if res.Packets != int64(len(msgs)-30) {
		t.Errorf("%d packets delivered, want %d", res.Packets, len(msgs)-30)
	}
	if res.LostPackets != 30 {
		t.Errorf("LostPackets = %d, want 30", res.LostPackets)
	}
}

// Slow links add latency without losing anything.
func TestSlowLinksAddLatency(t *testing.T) {
	m := topology.NewMesh(4, 4)
	msgs := allPairsMsgs(m, 900)
	cfg := cfg4x4()
	cfg.Fault = &fault.Config{
		SlowLinks:       fault.MeshLinks(m),
		SlowExtraCycles: 4,
	}
	slow := mustRun(t, cfg, msgs)
	base := mustRun(t, cfg4x4(), msgs)
	if slow.LostPackets != 0 || slow.DroppedFlits != 0 {
		t.Fatalf("slow links lost traffic: %+v", slow)
	}
	if slow.Cycles <= base.Cycles {
		t.Errorf("slow links drained in %d cycles, base %d", slow.Cycles, base.Cycles)
	}
	if slow.TotalPacketLatency <= base.TotalPacketLatency {
		t.Errorf("slow links latency %d <= base %d", slow.TotalPacketLatency, base.TotalPacketLatency)
	}
}

// Flaky-link restriction: drops only happen on the listed links, so a
// burst that avoids them is untouched even at DropProb 1.
func TestFlakyLinksRestrictDrops(t *testing.T) {
	cfg := cfg4x4()
	cfg.Fault = &fault.Config{
		DropProb:   1,
		FlakyLinks: []fault.Link{{A: 0, B: 1}},
	}
	// Row-3 traffic never crosses link 0-1 under XY routing.
	res := mustRun(t, cfg, []Message{{Src: 12, Dst: 15, Bytes: 900}})
	if res.DroppedFlits != 0 || res.Retransmits != 0 || res.LostPackets != 0 {
		t.Errorf("traffic away from the flaky link was hit: %+v", res)
	}
	// Traffic across it is corrupted on every attempt and lost.
	res = mustRun(t, cfg, []Message{{Src: 0, Dst: 1, Bytes: 900}})
	if res.LostPackets == 0 {
		t.Errorf("certain corruption on the flaky link lost nothing: %+v", res)
	}
}
