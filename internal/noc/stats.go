package noc

import (
	"fmt"
	"sort"
	"strings"
)

// LinkStats summarizes per-link flit loads of the most recent run —
// the congestion analysis view (which mesh links carried the burst).
type LinkStats struct {
	// Loads holds one entry per directed link that carried traffic.
	Loads []LinkLoad
	Max   int64
	Total int64
}

// LinkLoad is the flit count of one directed inter-router link.
type LinkLoad struct {
	From, To int
	Flits    int64
}

// AvgLoad returns the mean flits per used link.
func (ls LinkStats) AvgLoad() float64 {
	if len(ls.Loads) == 0 {
		return 0
	}
	return float64(ls.Total) / float64(len(ls.Loads))
}

// Imbalance returns max/avg link load — 1.0 is perfectly balanced.
func (ls LinkStats) Imbalance() float64 {
	avg := ls.AvgLoad()
	if avg == 0 {
		return 0
	}
	return float64(ls.Max) / avg
}

// LinkUtilization reports the per-link flit loads of the last RunBurst
// (or open-loop run), sorted by decreasing load.
func (s *Simulator) LinkUtilization() LinkStats {
	var ls LinkStats
	for node := range s.linkLoad {
		for op := PortEast; op <= PortSouth; op++ {
			n := s.linkLoad[node][op-1]
			if n == 0 {
				continue
			}
			ls.Loads = append(ls.Loads, LinkLoad{From: node, To: s.neighbor(node, op), Flits: n})
			ls.Total += n
			if n > ls.Max {
				ls.Max = n
			}
		}
	}
	sort.Slice(ls.Loads, func(i, j int) bool {
		if ls.Loads[i].Flits != ls.Loads[j].Flits {
			return ls.Loads[i].Flits > ls.Loads[j].Flits
		}
		if ls.Loads[i].From != ls.Loads[j].From {
			return ls.Loads[i].From < ls.Loads[j].From
		}
		return ls.Loads[i].To < ls.Loads[j].To
	})
	return ls
}

// TopN returns the n most-loaded links (all of them when n exceeds
// the count, none when n <= 0). Loads are already sorted by
// decreasing flits, ties broken by (From, To).
func (ls LinkStats) TopN(n int) []LinkLoad {
	if n <= 0 {
		return nil
	}
	if n > len(ls.Loads) {
		n = len(ls.Loads)
	}
	return ls.Loads[:n]
}

// String renders the top-loaded links; when the table is truncated a
// trailer says how many links were omitted.
func (ls LinkStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "links=%d total=%d max=%d avg=%.1f imbalance=%.2f\n",
		len(ls.Loads), ls.Total, ls.Max, ls.AvgLoad(), ls.Imbalance())
	for _, l := range ls.TopN(8) {
		fmt.Fprintf(&b, "  %2d -> %2d: %d flits\n", l.From, l.To, l.Flits)
	}
	if rest := len(ls.Loads) - 8; rest > 0 {
		fmt.Fprintf(&b, "  (+%d more)\n", rest)
	}
	return b.String()
}
