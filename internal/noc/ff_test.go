package noc

import (
	"math/rand"
	"testing"

	"learn2scale/internal/topology"
)

// TestFastForwardMatchesDenseTicking compares fast-forwarded runs
// against the dense cycle-by-cycle loop over a corpus of random bursts
// with staggered injection times. Every Result field must be
// byte-identical: the skipped cycles are provably no-ops, so only the
// wall-clock cost of the loop may differ.
func TestFastForwardMatchesDenseTicking(t *testing.T) {
	cfg := DefaultConfig(topology.NewMesh(3, 3))
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		msgs := make([]Message, n)
		for i := range msgs {
			msgs[i] = Message{
				Src:   rng.Intn(9),
				Dst:   rng.Intn(9),
				Bytes: rng.Intn(3000),
				Time:  int64(rng.Intn(2000)), // sparse enough to leave idle gaps
			}
		}
		ff := MustNew(cfg)
		dense := MustNew(cfg)
		dense.noFastForward = true
		rf, errF := ff.RunBurst(msgs)
		rd, errD := dense.RunBurst(msgs)
		if errF != nil || errD != nil {
			t.Fatalf("seed %d: errors ff=%v dense=%v", seed, errF, errD)
		}
		if rf != rd {
			t.Errorf("seed %d: fast-forward diverged:\nff    %+v\ndense %+v", seed, rf, rd)
		}
		if ff.LoopIters() > dense.LoopIters() {
			t.Errorf("seed %d: fast-forward ran %d iterations, dense only %d",
				seed, ff.LoopIters(), dense.LoopIters())
		}
		if dense.LoopIters() != rd.Cycles {
			t.Errorf("seed %d: dense loop iters %d != cycles %d",
				seed, dense.LoopIters(), rd.Cycles)
		}
	}
}

// TestFastForwardSkipsIdleGap pins the point of the optimisation: a
// burst whose messages are separated by a multi-million-cycle gap must
// drain with a loop-iteration count proportional to the active cycles,
// not to the simulated time span.
func TestFastForwardSkipsIdleGap(t *testing.T) {
	cfg := cfg4x4()
	const gap = 5_000_000
	msgs := []Message{
		{Src: 0, Dst: 15, Bytes: 4096},
		{Src: 15, Dst: 0, Bytes: 4096, Time: gap},
	}
	s := MustNew(cfg)
	res, err := s.RunBurst(msgs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= gap {
		t.Errorf("drain at cycle %d should extend past the %d-cycle gap", res.Cycles, gap)
	}
	if it := s.LoopIters(); it > 10_000 {
		t.Errorf("fast-forward executed %d loop iterations for %d simulated cycles",
			it, res.Cycles)
	}
	checkConservation(t, cfg, msgs, res)
}

// TestFastForwardPreservesMaxCyclesError: a jump past the horizon must
// trip the same overrun error the dense loop reports, instead of
// silently simulating beyond MaxCycles.
func TestFastForwardPreservesMaxCyclesError(t *testing.T) {
	cfg := cfg4x4()
	cfg.MaxCycles = 1000
	msgs := []Message{
		{Src: 0, Dst: 1, Bytes: 64},
		{Src: 1, Dst: 2, Bytes: 64, Time: 50_000},
	}
	ff := MustNew(cfg)
	dense := MustNew(cfg)
	dense.noFastForward = true
	_, errF := ff.RunBurst(msgs)
	_, errD := dense.RunBurst(msgs)
	if errF == nil || errD == nil {
		t.Fatalf("expected overrun errors, got ff=%v dense=%v", errF, errD)
	}
	if errF.Error() != errD.Error() {
		t.Errorf("error mismatch:\nff    %v\ndense %v", errF, errD)
	}
}

// TestRunBurstReuseZeroAlloc pins the state-reuse property: after the
// first run has sized the plane, queue, and packet-arena storage,
// repeated bursts on one simulator stay off the heap entirely.
func TestRunBurstReuseZeroAlloc(t *testing.T) {
	cfg := cfg4x4()
	s := MustNew(cfg)
	var msgs []Message
	for d := 1; d < 16; d++ {
		msgs = append(msgs, Message{Src: 0, Dst: d, Bytes: 2048, Time: int64(d * 7)})
	}
	want, err := s.RunBurst(msgs) // size all reusable storage
	if err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(10, func() {
		got, err := s.RunBurst(msgs)
		if err != nil || got != want {
			t.Fatalf("reused run diverged: %+v err=%v", got, err)
		}
	})
	if avg != 0 {
		t.Errorf("steady-state RunBurst allocates %.1f objects/run, want 0", avg)
	}
}

// TestSimulatorReuseMatchesFresh: results from a reused simulator must
// equal a fresh simulator's on differing back-to-back bursts (state
// fully reset between runs).
func TestSimulatorReuseMatchesFresh(t *testing.T) {
	cfg := cfg4x4()
	reused := MustNew(cfg)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 8; trial++ {
		n := 1 + rng.Intn(10)
		msgs := make([]Message, n)
		for i := range msgs {
			msgs[i] = Message{
				Src:   rng.Intn(16),
				Dst:   rng.Intn(16),
				Bytes: rng.Intn(6000),
				Time:  int64(rng.Intn(300)),
			}
		}
		got, err1 := reused.RunBurst(msgs)
		want, err2 := MustNew(cfg).RunBurst(msgs)
		if err1 != nil || err2 != nil {
			t.Fatalf("trial %d: errors %v / %v", trial, err1, err2)
		}
		if got != want {
			t.Errorf("trial %d: reused simulator diverged:\nreused %+v\nfresh  %+v", trial, got, want)
		}
	}
}

// BenchmarkSparseBurst16 measures a time-sparse synchronization
// schedule — sixteen staggered layer-transition messages spread over a
// wide cycle span — where idle-cycle fast-forward carries the speedup.
func BenchmarkSparseBurst16(b *testing.B) {
	cfg := cfg4x4()
	var msgs []Message
	for i := 0; i < 16; i++ {
		msgs = append(msgs, Message{
			Src:   i,
			Dst:   15 - i,
			Bytes: 2048,
			Time:  int64(i) * 60_000,
		})
	}
	sim := MustNew(cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunBurst(msgs); err != nil {
			b.Fatal(err)
		}
	}
}
