package noc

import (
	"bytes"
	"reflect"
	"testing"

	"learn2scale/internal/fault"
	"learn2scale/internal/timeline"
	"learn2scale/internal/topology"
)

// analyzeRun attaches a fresh sink to cfg, runs the burst, and returns
// the result plus the round-tripped (written, re-read, validated)
// timeline analysis.
func analyzeRun(t *testing.T, cfg Config, msgs []Message) (Result, *timeline.Analysis) {
	t.Helper()
	sink := timeline.NewSink()
	cfg.Timeline = sink
	res := mustRun(t, cfg, msgs)
	var buf bytes.Buffer
	if err := sink.WriteRecord(&buf, "noc-test", nil); err != nil {
		t.Fatalf("WriteRecord: %v", err)
	}
	tl, err := timeline.ReadRecord(&buf)
	if err != nil {
		t.Fatalf("ReadRecord: %v", err)
	}
	a, err := timeline.Analyze(tl)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return res, a
}

// An attached timeline sink must be pure observation: the Result of a
// traced run is bit-identical to an untraced one.
func TestTimelineSinkDoesNotPerturbResult(t *testing.T) {
	msgs := allPairsMsgs(topology.NewMesh(4, 4), 900)
	base := mustRun(t, cfg4x4(), msgs)
	traced, _ := analyzeRun(t, cfg4x4(), msgs)
	if !reflect.DeepEqual(base, traced) {
		t.Fatalf("timeline sink changed the result:\nbase   %+v\ntraced %+v", base, traced)
	}

	cfg := cfg4x4()
	cfg.Fault = fault.Scenario(0.1, 5)
	fbase := mustRun(t, cfg, msgs)
	cfg = cfg4x4()
	cfg.Fault = fault.Scenario(0.1, 5)
	ftraced, _ := analyzeRun(t, cfg, msgs)
	if !reflect.DeepEqual(fbase, ftraced) {
		t.Fatalf("timeline sink changed the faulted result:\nbase   %+v\ntraced %+v", fbase, ftraced)
	}
}

// The timeline must agree with the simulator's own counters: packet
// count, summed and maximum eject latency, link busy cycles, and an
// exactly telescoping latency decomposition.
func TestTimelineMatchesResult(t *testing.T) {
	msgs := allPairsMsgs(topology.NewMesh(4, 4), 900)
	res, a := analyzeRun(t, cfg4x4(), msgs)

	bd := a.Overall
	if int64(bd.Packets) != res.Packets {
		t.Fatalf("timeline has %d delivered packets, result %d", bd.Packets, res.Packets)
	}
	if bd.Total != res.TotalPacketLatency {
		t.Fatalf("timeline latency sum %d, result %d", bd.Total, res.TotalPacketLatency)
	}
	if sum := bd.QueueWait + bd.Pipeline + bd.VCStall + bd.SwitchStall + bd.Wire + bd.Serialization; sum != bd.Total {
		t.Fatalf("decomposition does not telescope: %d != %d (%+v)", sum, bd.Total, bd)
	}
	var maxLat int64
	for _, sec := range a.Sections {
		if c := sec.Critical; c != nil && c.Latency() > maxLat {
			maxLat = c.Latency()
		}
	}
	if maxLat != res.MaxPacketLatency {
		t.Fatalf("critical chain latency %d, result max %d", maxLat, res.MaxPacketLatency)
	}
	// Every flit's link traversal occupies the link for one cycle, so
	// summed link busy time equals the flit-hop count.
	var busy int64
	for _, l := range a.Links {
		busy += l.BusyCycles
	}
	if busy != res.LinkTraversals {
		t.Fatalf("link busy cycles %d, link traversals %d", busy, res.LinkTraversals)
	}
	if a.Retransmits != 0 || a.LostPackets != 0 || a.LostTransfers != 0 {
		t.Fatalf("fault-free timeline has fault events: %+v", a)
	}
}

// A zero-rate fault layer must leave no retransmission or loss events
// in the timeline, and an active one must put its retransmissions
// there.
func TestTimelineFaultEvents(t *testing.T) {
	msgs := allPairsMsgs(topology.NewMesh(4, 4), 900)

	cfg := cfg4x4()
	cfg.Fault = fault.Scenario(0, 5)
	res, a := analyzeRun(t, cfg, msgs)
	if a.Retransmits != 0 || a.LostPackets != 0 {
		t.Fatalf("zero-fault timeline has %d retx, %d lost", a.Retransmits, a.LostPackets)
	}
	if int64(a.Overall.Packets) != res.Packets {
		t.Fatalf("%d delivered in timeline, %d in result", a.Overall.Packets, res.Packets)
	}

	cfg = cfg4x4()
	cfg.Fault = fault.Scenario(0.1, 5)
	res, a = analyzeRun(t, cfg, msgs)
	if res.Retransmits == 0 {
		t.Fatalf("fault scenario produced no retransmits; test is vacuous")
	}
	if int64(a.Retransmits) != res.Retransmits {
		t.Fatalf("timeline has %d retx events, result %d", a.Retransmits, res.Retransmits)
	}
	if int64(a.LostPackets) != res.LostPackets {
		t.Fatalf("timeline has %d lost packets, result %d", a.LostPackets, res.LostPackets)
	}
	if int64(a.Overall.Packets) != res.Packets-res.LostPackets {
		t.Fatalf("timeline delivered %d, want %d-%d", a.Overall.Packets, res.Packets, res.LostPackets)
	}
}

// Disconnected endpoints surface as never-injected lost transfers.
func TestTimelineLostTransfers(t *testing.T) {
	cfg := cfg4x4()
	cfg.Fault = &fault.Config{DeadRouters: []int{5}}
	msgs := []Message{{Src: 0, Dst: 5, Bytes: 64}, {Src: 0, Dst: 1, Bytes: 64}}
	res, a := analyzeRun(t, cfg, msgs)
	if res.LostPackets == 0 {
		t.Fatalf("dead router lost nothing; test is vacuous")
	}
	if a.LostTransfers != 1 {
		t.Fatalf("%d never-injected transfers in timeline, want 1", a.LostTransfers)
	}
	if a.Overall.Packets != 1 {
		t.Fatalf("%d delivered, want 1", a.Overall.Packets)
	}
}

// Named sections registered through SetTimelineSection must be
// consumed one per burst, falling back to auto-registration after.
func TestTimelineSectionHandoff(t *testing.T) {
	sink := timeline.NewSink()
	cfg := cfg4x4()
	cfg.Timeline = sink
	s := MustNew(cfg)
	msgs := []Message{{Src: 0, Dst: 3, Bytes: 64}}

	s.SetTimelineSection(sink.Section("named"))
	if _, err := s.RunBurst(msgs); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunBurst(msgs); err != nil { // auto-registered
		t.Fatal(err)
	}
	secs := sink.Sections()
	if len(secs) != 2 || secs[0].Label != "named" || secs[1].Label == "named" {
		t.Fatalf("sections = %+v", secs)
	}
	if len(secs[0].Events) == 0 || len(secs[1].Events) == 0 {
		t.Fatalf("empty sections: %d and %d events", len(secs[0].Events), len(secs[1].Events))
	}
}
