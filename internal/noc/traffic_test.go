package noc

import (
	"testing"

	"learn2scale/internal/topology"
)

func TestGenerateTrafficDeterministic(t *testing.T) {
	cfg := cfg4x4()
	a := GenerateTraffic(cfg, Uniform, 0.1, 100, 7)
	b := GenerateTraffic(cfg, Uniform, 0.1, 100, 7)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give identical schedules")
		}
	}
}

func TestGenerateTrafficRateScales(t *testing.T) {
	cfg := cfg4x4()
	low := GenerateTraffic(cfg, Uniform, 0.05, 2000, 1)
	high := GenerateTraffic(cfg, Uniform, 0.2, 2000, 1)
	if len(high) < 2*len(low) {
		t.Errorf("4x rate gave %d vs %d messages", len(high), len(low))
	}
}

func TestGenerateTrafficRejectsBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("excessive rate must panic")
		}
	}()
	GenerateTraffic(cfg4x4(), Uniform, 5.0, 10, 1)
}

func TestTransposeDestinations(t *testing.T) {
	cfg := cfg4x4()
	msgs := GenerateTraffic(cfg, Transpose, 0.3, 200, 2)
	if len(msgs) == 0 {
		t.Fatal("no transpose traffic")
	}
	for _, m := range msgs {
		cs := cfg.Mesh.Coord(m.Src)
		cd := cfg.Mesh.Coord(m.Dst)
		if cd.X != cs.Y || cd.Y != cs.X {
			t.Fatalf("transpose sent %v to %v", cs, cd)
		}
	}
}

func TestNeighborIsOneDestination(t *testing.T) {
	cfg := cfg4x4()
	for _, m := range GenerateTraffic(cfg, Neighbor, 0.3, 100, 3) {
		if m.Dst != (m.Src+1)%16 {
			t.Fatalf("neighbor sent %d to %d", m.Src, m.Dst)
		}
	}
}

func TestHotspotConcentratesTraffic(t *testing.T) {
	cfg := cfg4x4()
	center := cfg.Mesh.ID(topology.Coord{X: 2, Y: 2})
	counts := map[int]int{}
	msgs := GenerateTraffic(cfg, Hotspot, 0.3, 500, 4)
	for _, m := range msgs {
		counts[m.Dst]++
	}
	if counts[center] < len(msgs)/4 {
		t.Errorf("hotspot center got %d of %d messages", counts[center], len(msgs))
	}
}

func TestOpenLoopLatencyGrowsWithLoad(t *testing.T) {
	cfg := DefaultConfig(topology.NewMesh(4, 4))
	sim := MustNew(cfg)
	curve, err := sim.LatencyLoadCurve(Uniform, []float64{0.05, 0.6}, 600, 5)
	if err != nil {
		t.Fatal(err)
	}
	if curve[0].AvgLatency <= 0 {
		t.Fatal("no latency measured")
	}
	if curve[1].AvgLatency <= curve[0].AvgLatency {
		t.Errorf("latency did not grow with load: %.1f -> %.1f",
			curve[0].AvgLatency, curve[1].AvgLatency)
	}
	// At low load the network is not saturated: it should drain soon
	// after the injection window.
	if curve[0].Drained > 900 {
		t.Errorf("low-load drain took %d cycles", curve[0].Drained)
	}
}

func TestOpenLoopAcceptedBounded(t *testing.T) {
	cfg := DefaultConfig(topology.NewMesh(4, 4))
	sim := MustNew(cfg)
	res, err := sim.RunOpenLoop(Uniform, 0.3, 500, 6)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted <= 0 || res.Accepted > float64(cfg.Planes) {
		t.Errorf("accepted throughput %v out of range", res.Accepted)
	}
}

func TestPatternStrings(t *testing.T) {
	for p, want := range map[Pattern]string{
		Uniform: "uniform", Transpose: "transpose", Neighbor: "neighbor", Hotspot: "hotspot",
	} {
		if p.String() != want {
			t.Errorf("%v != %s", p, want)
		}
	}
	if Pattern(9).String() == "" {
		t.Error("unknown pattern should format")
	}
}

func TestLinkUtilizationConservation(t *testing.T) {
	cfg := cfg4x4()
	sim := MustNew(cfg)
	var msgs []Message
	for s := 0; s < 16; s++ {
		for d := 0; d < 16; d++ {
			if s != d {
				msgs = append(msgs, Message{Src: s, Dst: d, Bytes: 1024})
			}
		}
	}
	res, err := sim.RunBurst(msgs)
	if err != nil {
		t.Fatal(err)
	}
	ls := sim.LinkUtilization()
	if ls.Total != res.LinkTraversals {
		t.Errorf("link stats total %d != link traversals %d", ls.Total, res.LinkTraversals)
	}
	if ls.Max <= 0 || ls.Imbalance() < 1 {
		t.Errorf("stats: max=%d imbalance=%v", ls.Max, ls.Imbalance())
	}
	if len(ls.Loads) == 0 || ls.Loads[0].Flits != ls.Max {
		t.Error("loads must be sorted by decreasing flits")
	}
	if ls.String() == "" {
		t.Error("empty String()")
	}
}

func TestLinkUtilizationNeighborPatternIsLocal(t *testing.T) {
	cfg := cfg4x4()
	sim := MustNew(cfg)
	// Node i -> i+1 in row-major order: most links carry exactly the
	// flits of one message; the wrap column transitions go further.
	if _, err := sim.RunBurst(GenerateTraffic(cfg, Neighbor, 0.2, 200, 9)); err != nil {
		t.Fatal(err)
	}
	ls := sim.LinkUtilization()
	if ls.Total == 0 {
		t.Fatal("no link traffic recorded")
	}
	for _, l := range ls.Loads {
		if cfg.Mesh.HopDist(l.From, l.To) != 1 {
			t.Fatalf("link %d->%d is not a mesh link", l.From, l.To)
		}
	}
}
