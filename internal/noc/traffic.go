package noc

import (
	"fmt"
	"math/rand"

	"learn2scale/internal/topology"
)

// Pattern is a synthetic traffic pattern for open-loop evaluation —
// the standard patterns BookSim-class simulators are characterized
// with, used here to validate the router model and for the NoC
// ablation experiments.
type Pattern int

// Supported patterns.
const (
	// Uniform sends each packet to a uniformly random other node.
	Uniform Pattern = iota
	// Transpose sends node (x,y) to node (y,x).
	Transpose
	// Neighbor sends to the next node in row-major order (minimal
	// distance, stresses serialization not bisection).
	Neighbor
	// Hotspot sends half the traffic to the mesh center, the rest
	// uniformly.
	Hotspot
)

func (p Pattern) String() string {
	switch p {
	case Uniform:
		return "uniform"
	case Transpose:
		return "transpose"
	case Neighbor:
		return "neighbor"
	case Hotspot:
		return "hotspot"
	}
	return fmt.Sprintf("Pattern(%d)", int(p))
}

// GenerateTraffic builds the open-loop injection schedule: for each of
// `cycles` cycles, each node independently injects a full packet with
// probability rate/PacketFlits (so `rate` is the offered load in
// flits per node per cycle). Deterministic in seed.
func GenerateTraffic(cfg Config, pattern Pattern, rate float64, cycles int, seed int64) []Message {
	if rate < 0 || rate > float64(cfg.Planes) {
		panic(fmt.Sprintf("noc: offered load %v outside [0, planes]", rate))
	}
	rng := rand.New(rand.NewSource(seed))
	n := cfg.Mesh.Nodes()
	pktProb := rate / float64(cfg.PacketFlits)
	payload := cfg.PayloadPerPacket()
	var msgs []Message
	for t := 0; t < cycles; t++ {
		for src := 0; src < n; src++ {
			if rng.Float64() >= pktProb {
				continue
			}
			dst := destination(pattern, cfg, src, rng)
			if dst == src {
				continue
			}
			msgs = append(msgs, Message{Src: src, Dst: dst, Bytes: payload, Time: int64(t)})
		}
	}
	return msgs
}

func destination(p Pattern, cfg Config, src int, rng *rand.Rand) int {
	n := cfg.Mesh.Nodes()
	switch p {
	case Uniform:
		d := rng.Intn(n - 1)
		if d >= src {
			d++
		}
		return d
	case Transpose:
		c := cfg.Mesh.Coord(src)
		if c.X < cfg.Mesh.H && c.Y < cfg.Mesh.W {
			return cfg.Mesh.ID(topology.Coord{X: c.Y, Y: c.X})
		}
		return src
	case Neighbor:
		return (src + 1) % n
	case Hotspot:
		if rng.Float64() < 0.5 {
			return cfg.Mesh.ID(topology.Coord{X: cfg.Mesh.W / 2, Y: cfg.Mesh.H / 2})
		}
		d := rng.Intn(n - 1)
		if d >= src {
			d++
		}
		return d
	}
	panic("noc: unknown pattern")
}

// OpenLoopResult summarizes an open-loop run.
type OpenLoopResult struct {
	OfferedRate float64 // flits/node/cycle requested
	Accepted    float64 // flits/node/cycle actually delivered within the window
	AvgLatency  float64 // cycles, injection to tail ejection
	MaxLatency  int64
	Drained     int64 // cycle the network fully drained
}

// RunOpenLoop injects `pattern` traffic at the offered rate for
// `cycles` cycles and runs until drained. Latencies include source
// queueing, so the curve exhibits the classic saturation knee.
func (s *Simulator) RunOpenLoop(pattern Pattern, rate float64, cycles int, seed int64) (OpenLoopResult, error) {
	msgs := GenerateTraffic(s.cfg, pattern, rate, cycles, seed)
	res, err := s.RunBurst(msgs)
	if err != nil {
		return OpenLoopResult{}, err
	}
	out := OpenLoopResult{
		OfferedRate: rate,
		AvgLatency:  res.AvgLatency(),
		MaxLatency:  res.MaxPacketLatency,
		Drained:     res.Cycles,
	}
	if res.Cycles > 0 {
		out.Accepted = float64(res.Flits) / float64(res.Cycles) / float64(s.cfg.Mesh.Nodes())
	}
	return out, nil
}

// LatencyLoadCurve sweeps offered load and returns one point per rate.
func (s *Simulator) LatencyLoadCurve(pattern Pattern, rates []float64, cycles int, seed int64) ([]OpenLoopResult, error) {
	var out []OpenLoopResult
	for _, r := range rates {
		p, err := s.RunOpenLoop(pattern, r, cycles, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}
