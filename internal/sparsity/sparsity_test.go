package sparsity

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"learn2scale/internal/netzoo"
	"learn2scale/internal/nn"
	"learn2scale/internal/partition"
	"learn2scale/internal/tensor"
	"learn2scale/internal/topology"
)

// tinyFCGroups builds a 4-core block structure over an 8×8 FC weight
// matrix with a recognizable pattern.
func tinyFCGroups(t *testing.T) (LayerGroups, *nn.Param) {
	t.Helper()
	fc := nn.NewFullyConnected("fc", 8, 8)
	p := fc.Weight()
	out := partition.Split(8, 4)
	in := partition.Split(8, 4)
	lg := NewLayerGroups("fc", p, out, in, 8, 1, 1)
	return lg, p
}

func TestBlockNormSmall(t *testing.T) {
	lg, p := tinyFCGroups(t)
	// Set block (i=1, j=0): inputs 2,3 × outputs 0,1 → w[o][u] for
	// o∈{0,1}, u∈{2,3}. Flat index o*8+u.
	for _, idx := range []int{0*8 + 2, 0*8 + 3, 1*8 + 2, 1*8 + 3} {
		p.W.Data[idx] = 2
	}
	if got := lg.BlockNorm(1, 0); math.Abs(got-4) > 1e-6 { // sqrt(4·4)=4
		t.Errorf("BlockNorm(1,0) = %v, want 4", got)
	}
	if got := lg.BlockNorm(0, 0); got != 0 {
		t.Errorf("untouched block norm = %v", got)
	}
	if lg.BlockSize(1, 0) != 4 {
		t.Errorf("BlockSize = %d, want 4", lg.BlockSize(1, 0))
	}
}

func TestConvBlockIndexing(t *testing.T) {
	conv := nn.NewConv2D("c", 4, 6, 6, 4, 3, 1, 1, 1)
	out := partition.Split(4, 2)
	in := partition.Split(4, 2)
	lg := NewLayerGroups("c", conv.Weight(), out, in, 4, 3, 3)
	// Block (0,0): oc 0..1, ic 0..1, 9 kernel elems each → 36 weights.
	if lg.BlockSize(0, 0) != 36 {
		t.Errorf("conv block size = %d, want 36", lg.BlockSize(0, 0))
	}
	// Sum of all block sizes must equal the weight count.
	total := 0
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			total += lg.BlockSize(i, j)
		}
	}
	if total != conv.Weight().W.Len() {
		t.Errorf("blocks cover %d of %d weights", total, conv.Weight().W.Len())
	}
}

func TestNewLayerGroupsShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched block structure must panic")
		}
	}()
	fc := nn.NewFullyConnected("fc", 8, 8)
	NewLayerGroups("fc", fc.Weight(), partition.Split(8, 4), partition.Split(9, 4), 9, 1, 1)
}

func TestDistanceStrengthProperties(t *testing.T) {
	m := topology.NewMesh(4, 4)
	s := DistanceStrength(m)
	// Diagonal free.
	for i := range s {
		if s[i][i] != 0 {
			t.Errorf("diagonal strength [%d] = %v", i, s[i][i])
		}
	}
	// Mean 1 over all entries.
	sum := 0.0
	for i := range s {
		for j := range s[i] {
			sum += s[i][j]
		}
	}
	if math.Abs(sum/256-1) > 1e-9 {
		t.Errorf("mean strength = %v, want 1", sum/256)
	}
	// Monotone with distance: strength(0,15) > strength(0,1).
	if s[0][15] <= s[0][1] {
		t.Errorf("distant strength %v <= near %v", s[0][15], s[0][1])
	}
}

func TestUniformStrength(t *testing.T) {
	s := UniformStrength(3)
	for i := range s {
		for j := range s[i] {
			if s[i][j] != 1 {
				t.Fatalf("uniform strength [%d][%d] = %v", i, j, s[i][j])
			}
		}
	}
}

func TestPenaltyAndGradDirection(t *testing.T) {
	lg, p := tinyFCGroups(t)
	rng := rand.New(rand.NewSource(1))
	p.W.RandN(rng, 1)
	gl := NewGroupLasso([]LayerGroups{lg}, UniformStrength(4), 0.01)
	pen := gl.Penalty()
	if pen <= 0 {
		t.Fatalf("penalty = %v", pen)
	}
	// A small step along −grad must reduce the penalty.
	p.G.Zero()
	gl.AddGrad()
	p.W.AXPY(-0.1, p.G)
	if after := gl.Penalty(); after >= pen {
		t.Errorf("penalty after gradient step %v >= before %v", after, pen)
	}
}

func TestZeroStrengthBlocksUntouched(t *testing.T) {
	lg, p := tinyFCGroups(t)
	rng := rand.New(rand.NewSource(2))
	p.W.RandN(rng, 1)
	st := UniformStrength(4)
	st[1][2] = 0 // exempt one block
	gl := NewGroupLasso([]LayerGroups{lg}, st, 0.05)
	p.G.Zero()
	gl.AddGrad()
	found := false
	lg.forSpans(1, 2, func(lo, hi int) {
		for _, v := range p.G.Data[lo:hi] {
			if v != 0 {
				found = true
			}
		}
	})
	if found {
		t.Error("zero-strength block received regularization gradient")
	}
}

func TestThresholdPrunesWeakBlocks(t *testing.T) {
	lg, p := tinyFCGroups(t)
	// Strong diagonal blocks, weak off-diagonal blocks.
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			v := float32(0.001)
			if i == j {
				v = 1.0
			}
			lg.forSpans(i, j, func(lo, hi int) {
				for idx := lo; idx < hi; idx++ {
					p.W.Data[idx] = v
				}
			})
		}
	}
	gl := NewGroupLasso([]LayerGroups{lg}, UniformStrength(4), 0.01)
	masks := gl.Threshold(0.5)
	if len(masks) != 1 {
		t.Fatalf("masks = %d", len(masks))
	}
	m := masks[0]
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if (i == j) != m[i][j] {
				t.Errorf("mask[%d][%d] = %v", i, j, m[i][j])
			}
		}
	}
	// Pruned weights must actually be zero.
	if lg.BlockNorm(0, 1) != 0 {
		t.Error("pruned block norm nonzero")
	}
	if lg.BlockNorm(0, 0) == 0 {
		t.Error("surviving block was cleared")
	}
}

func TestOccupancyString(t *testing.T) {
	m := partition.DiagonalMask(3)
	s := OccupancyString(m)
	want := "1 0 0\n0 1 0\n0 0 1\n"
	if s != want {
		t.Errorf("OccupancyString = %q, want %q", s, want)
	}
	if !strings.Contains(s, "1") {
		t.Error("missing occupancy bits")
	}
}

func TestForPlanMLP(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	spec := netzoo.MLP()
	net := spec.Build(rng)
	plan := partition.NewPlan(spec, 16)
	gl, err := ForPlan(net, plan, UniformStrength(16), 0.01)
	if err != nil {
		t.Fatal(err)
	}
	// ip2 and ip3 are regularized; ip1 (broadcast input) is not.
	if len(gl.Layers) != 2 {
		t.Fatalf("regularized layers = %d, want 2", len(gl.Layers))
	}
	if gl.Layers[0].Name != "ip2" || gl.Layers[1].Name != "ip3" {
		t.Errorf("layers: %s, %s", gl.Layers[0].Name, gl.Layers[1].Name)
	}
}

func TestForPlanRejectsGroupedConv(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	spec := netzoo.ConvNetI10Reduced([3]int{16, 32, 64}, 4)
	net := spec.Build(rng)
	plan := partition.NewPlan(spec, 4)
	if _, err := ForPlan(net, plan, UniformStrength(4), 0.01); err == nil {
		t.Error("grouped conv must be rejected")
	}
}

func TestMasksByLayerIndexing(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	spec := netzoo.MLP()
	net := spec.Build(rng)
	plan := partition.NewPlan(spec, 4)
	gl, err := ForPlan(net, plan, UniformStrength(4), 0.01)
	if err != nil {
		t.Fatal(err)
	}
	masks := gl.Threshold(0)
	byLayer := MasksByLayer(gl, plan, masks)
	if len(byLayer) != 3 {
		t.Fatalf("byLayer = %d entries", len(byLayer))
	}
	if byLayer[0] != nil {
		t.Error("layer 0 must be unmasked")
	}
	if byLayer[1] == nil || byLayer[2] == nil {
		t.Error("layers 1,2 must carry masks")
	}
}

// End-to-end: group-Lasso training with a distance mask must shrink
// distant blocks more than near ones while the model stays accurate.
func TestTrainingShrinksDistantBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const dim, classes = 16, 4
	// Separable toy data.
	var xs []*tensor.Tensor
	var ys []int
	for i := 0; i < 160; i++ {
		lbl := i % classes
		x := tensor.New(1, 4, 4)
		x.RandN(rng, 0.3)
		x.Data[lbl] += 2.5
		xs = append(xs, x)
		ys = append(ys, lbl)
	}
	spec := netzoo.NetSpec{
		Name: "toy", InC: 1, InH: 4, InW: 4,
		Layers: []netzoo.LayerSpec{
			{Name: "fc1", Kind: netzoo.FC, Out: 16},
			{Name: "fc2", Kind: netzoo.FC, Out: 16},
			{Name: "fc3", Kind: netzoo.FC, Out: classes},
		},
	}
	_ = dim
	net := spec.Build(rng)
	mesh := topology.NewMesh(2, 2)
	plan := partition.NewPlan(spec, 4)
	gl, err := ForPlan(net, plan, DistanceStrength(mesh), 0.004)
	if err != nil {
		t.Fatal(err)
	}
	tr := &nn.Trainer{
		Net: net,
		Config: nn.SGDConfig{
			LearningRate: 0.1, Momentum: 0.9, BatchSize: 16, Epochs: 30, LRDecay: 1, Seed: 1,
		},
		Reg: gl,
	}
	tr.Fit(xs, ys)
	if acc := net.Accuracy(xs, ys); acc < 0.9 {
		t.Fatalf("accuracy with regularizer = %v", acc)
	}
	// fc2's blocks: 2-hop pairs (0,3) and (1,2) on a 2x2 mesh must be
	// weaker on average than diagonal blocks.
	lg := gl.Layers[0]
	far := (lg.BlockNorm(0, 3) + lg.BlockNorm(3, 0) + lg.BlockNorm(1, 2) + lg.BlockNorm(2, 1)) / 4
	diag := (lg.BlockNorm(0, 0) + lg.BlockNorm(1, 1) + lg.BlockNorm(2, 2) + lg.BlockNorm(3, 3)) / 4
	if far >= diag {
		t.Errorf("distant block norm %v >= diagonal %v after SS_Mask training", far, diag)
	}
}

// Property: Penalty is non-negative and zero exactly for zero weights.
func TestQuickPenaltyNonNegative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fc := nn.NewFullyConnected("fc", 8, 8)
		fc.Weight().W.RandN(rng, 1)
		lg := NewLayerGroups("fc", fc.Weight(), partition.Split(8, 4), partition.Split(8, 4), 8, 1, 1)
		gl := NewGroupLasso([]LayerGroups{lg}, UniformStrength(4), 0.01)
		if gl.Penalty() < 0 {
			return false
		}
		fc.Weight().W.Zero()
		return gl.Penalty() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: a larger threshold never keeps more blocks.
func TestQuickThresholdMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fc := nn.NewFullyConnected("fc", 8, 8)
		fc.Weight().W.RandN(rng, 1)
		lg := NewLayerGroups("fc", fc.Weight(), partition.Split(8, 4), partition.Split(8, 4), 8, 1, 1)
		gl := NewGroupLasso([]LayerGroups{lg}, UniformStrength(4), 0.01)
		saved := fc.Weight().W.Clone()
		lo := gl.Threshold(0.2)[0]
		copy(fc.Weight().W.Data, saved.Data)
		hi := gl.Threshold(1.5)[0]
		count := func(m partition.BlockMask) int {
			c := 0
			for i := range m {
				for j := range m[i] {
					if m[i][j] {
						c++
					}
				}
			}
			return c
		}
		return count(hi) <= count(lo)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkGroupLassoAddGrad(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	fc := nn.NewFullyConnected("fc", 512, 304)
	fc.Weight().W.RandN(rng, 0.1)
	lg := NewLayerGroups("fc", fc.Weight(), partition.Split(304, 16), partition.Split(512, 16), 512, 1, 1)
	gl := NewGroupLasso([]LayerGroups{lg}, UniformStrength(16), 0.01)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fc.Weight().G.Zero()
		gl.AddGrad()
	}
}

func TestProjectorKeepsPrunedBlocksZero(t *testing.T) {
	lg, p := tinyFCGroups(t)
	rng := rand.New(rand.NewSource(9))
	p.W.RandN(rng, 1)
	gl := NewGroupLasso([]LayerGroups{lg}, UniformStrength(4), 0.01)
	masks := gl.Threshold(1.2) // prune aggressively
	proj := gl.Projector(masks)
	// Perturb every weight (as a fine-tuning step would), project, and
	// verify pruned blocks return to exactly zero while kept blocks
	// keep their perturbation.
	for i := range p.W.Data {
		p.W.Data[i] += 0.5
	}
	proj()
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			norm := lg.BlockNorm(i, j)
			if masks[0][i][j] && norm == 0 {
				t.Errorf("kept block (%d,%d) was zeroed", i, j)
			}
			if !masks[0][i][j] && norm != 0 {
				t.Errorf("pruned block (%d,%d) escaped projection: %v", i, j, norm)
			}
		}
	}
}

func TestProjectorMaskCountMismatchPanics(t *testing.T) {
	lg, _ := tinyFCGroups(t)
	gl := NewGroupLasso([]LayerGroups{lg}, UniformStrength(4), 0.01)
	defer func() {
		if recover() == nil {
			t.Error("mismatched mask count must panic")
		}
	}()
	gl.Projector(nil)
}

func TestThresholdColumnSafety(t *testing.T) {
	// All blocks weak: every destination core must still keep its
	// strongest input block (no dead outputs).
	lg, p := tinyFCGroups(t)
	rng := rand.New(rand.NewSource(10))
	for i := range p.W.Data {
		p.W.Data[i] = float32(rng.NormFloat64()) * 1e-4
	}
	gl := NewGroupLasso([]LayerGroups{lg}, UniformStrength(4), 0.01)
	masks := gl.Threshold(100) // absurd threshold: everything "weak"
	for j := 0; j < 4; j++ {
		alive := false
		for i := 0; i < 4; i++ {
			if masks[0][i][j] {
				alive = true
			}
		}
		if !alive {
			t.Errorf("destination core %d lost all input blocks", j)
		}
	}
}

func TestNewGroupLassoSizeMismatchPanics(t *testing.T) {
	lg, _ := tinyFCGroups(t)
	defer func() {
		if recover() == nil {
			t.Error("strength size mismatch must panic")
		}
	}()
	NewGroupLasso([]LayerGroups{lg}, UniformStrength(8), 0.01)
}

func TestUnstructuredPruneFraction(t *testing.T) {
	lg, p := tinyFCGroups(t)
	rng := rand.New(rand.NewSource(11))
	p.W.RandN(rng, 1)
	n := UnstructuredPrune(lg, 0.5)
	if n < 28 || n > 36 { // ~half of 64
		t.Errorf("pruned %d of 64 weights at frac 0.5", n)
	}
	zeros := 0
	for _, v := range p.W.Data {
		if v == 0 {
			zeros++
		}
	}
	if zeros != n {
		t.Errorf("zeros %d != reported %d", zeros, n)
	}
	if UnstructuredPrune(lg, 0) != 0 {
		t.Error("frac 0 must prune nothing")
	}
}

func TestUnitTrafficStructuredVsUnstructured(t *testing.T) {
	// The paper's §IV.C.1 point: random zeros barely reduce traffic,
	// block zeros eliminate it. 70% unstructured pruning on an 8x8
	// matrix leaves almost every (i,j) block active; zeroing whole
	// blocks deactivates them.
	lg, p := tinyFCGroups(t)
	rng := rand.New(rand.NewSource(12))
	p.W.RandN(rng, 1)
	UnstructuredPrune(lg, 0.7)
	unstructured := UnitTraffic(lg)
	activeU := 0
	for i := range unstructured {
		for j := range unstructured[i] {
			if unstructured[i][j] {
				activeU++
			}
		}
	}
	// Now zero complete blocks to the same overall sparsity.
	p.W.RandN(rng, 1)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if (i+j)%3 != 0 { // ~2/3 of blocks
				lg.forSpans(i, j, func(lo, hi int) { clear(p.W.Data[lo:hi]) })
			}
		}
	}
	structured := UnitTraffic(lg)
	activeS := 0
	for i := range structured {
		for j := range structured[i] {
			if structured[i][j] {
				activeS++
			}
		}
	}
	if activeS >= activeU {
		t.Errorf("structured zeros left %d active blocks, unstructured %d — structure must win", activeS, activeU)
	}
	// Unstructured 70% should keep the large majority of blocks alive.
	if activeU < 12 {
		t.Errorf("unstructured pruning deactivated too many blocks (%d/16): not the expected behaviour at this size", activeU)
	}
}

// forSpans must visit exactly the indices of the old per-element block
// walk, in the same order — the guarantee BlockNorm's fold order (and
// thus training determinism) rests on.
func TestForSpansMatchesElementWalk(t *testing.T) {
	lg, _ := tinyFCGroups(t)
	kk := lg.KH * lg.KW
	for i := 0; i < lg.Cores(); i++ {
		for j := 0; j < lg.Cores(); j++ {
			var got []int
			lg.forSpans(i, j, func(lo, hi int) {
				for k := lo; k < hi; k++ {
					got = append(got, k)
				}
			})
			var want []int
			for o := lg.OutRanges[j].Lo; o < lg.OutRanges[j].Hi; o++ {
				rowBase := o * lg.InUnits * kk
				for u := lg.InRanges[i].Lo; u < lg.InRanges[i].Hi; u++ {
					for k := 0; k < kk; k++ {
						want = append(want, rowBase+u*kk+k)
					}
				}
			}
			if len(got) != lg.BlockSize(i, j) {
				t.Fatalf("block (%d,%d): %d indices, BlockSize %d", i, j, len(got), lg.BlockSize(i, j))
			}
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("block (%d,%d) index %d: got %d want %d", i, j, k, got[k], want[k])
				}
			}
		}
	}
}
