// Package sparsity implements the paper's communication-aware
// structured sparsification: group-Lasso regularization (Eq. 1–3)
// over the n×n core-block partition of every layer's weights, with a
// per-block sparsity-strength matrix.
//
// Two strength policies reproduce the paper's two schemes:
//
//   - SS (structured sparsified): every block of a layer shares one
//     strength — distance-oblivious (UniformStrength).
//   - SS_Mask (communication-aware): a block's strength scales with
//     the mesh hop distance between the producing and consuming cores
//     (DistanceStrength, the paper's Fig. 6(a) factor mask), so the
//     blocks that would cause long-distance NoC traffic are pruned
//     first while diagonal (same-core) blocks are never pressured.
//
// After training, Threshold zeroes the blocks whose learned norms
// collapsed and returns the per-layer partition.BlockMask that the
// traffic model consumes.
package sparsity

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"learn2scale/internal/nn"
	"learn2scale/internal/parallel"
	"learn2scale/internal/partition"
	"learn2scale/internal/topology"
)

// LayerGroups is the core-block structure of one weight tensor.
// Weights are OIHW for conv (KH=KW=K) and (out, in) for FC (KH=KW=1).
// Block (i, j) holds the weights connecting input units produced by
// core i to output units owned by core j.
type LayerGroups struct {
	Name      string
	Param     *nn.Param
	OutRanges []partition.Range // output channels/neurons per core
	InRanges  []partition.Range // input units per core
	InUnits   int               // total input units (channels or neurons)
	KH, KW    int
}

// NewLayerGroups builds the block structure for one parameter.
func NewLayerGroups(name string, p *nn.Param, outRanges, inRanges []partition.Range, inUnits, kh, kw int) LayerGroups {
	lg := LayerGroups{
		Name: name, Param: p,
		OutRanges: outRanges, InRanges: inRanges,
		InUnits: inUnits, KH: kh, KW: kw,
	}
	// The weight tensor must be (outTotal × inUnits × KH × KW).
	outTotal := 0
	for _, r := range outRanges {
		if r.Hi > outTotal {
			outTotal = r.Hi
		}
	}
	if want := outTotal * inUnits * kh * kw; p.W.Len() != want {
		panic(fmt.Sprintf("sparsity: %s: param has %d weights, block structure implies %d",
			name, p.W.Len(), want))
	}
	return lg
}

// Cores returns the number of cores (and thus blocks per side).
func (lg LayerGroups) Cores() int { return len(lg.OutRanges) }

// forSpans invokes fn with the contiguous flat weight ranges
// [lo, hi) making up block (i, j): the input units of one core are
// consecutive, so each output unit owned by core j contributes one
// unbroken run of InRanges[i].Len()·KH·KW weights. Scanning spans
// instead of single indices turns the block walks into straight slice
// loops; the element order (output unit ascending, then input unit,
// then kernel offset) is exactly the order the per-index walk visited.
func (lg LayerGroups) forSpans(i, j int, fn func(lo, hi int)) {
	kk := lg.KH * lg.KW
	spanLo := lg.InRanges[i].Lo * kk
	spanHi := lg.InRanges[i].Hi * kk
	if spanLo == spanHi {
		return
	}
	for o := lg.OutRanges[j].Lo; o < lg.OutRanges[j].Hi; o++ {
		rowBase := o * lg.InUnits * kk
		fn(rowBase+spanLo, rowBase+spanHi)
	}
}

// BlockSize returns the number of weights in block (i, j).
func (lg LayerGroups) BlockSize(i, j int) int {
	return lg.OutRanges[j].Len() * lg.InRanges[i].Len() * lg.KH * lg.KW
}

// ZeroBlock clears every weight of block (i, j) in place. The fault
// experiments use it to express an undelivered activation transfer:
// zero-filled inputs from core i contribute nothing to core j's
// outputs, which is exactly what zeroing the (i, j) weight block
// computes.
func (lg LayerGroups) ZeroBlock(i, j int) {
	w := lg.Param.W.Data
	lg.forSpans(i, j, func(lo, hi int) { clear(w[lo:hi]) })
}

// BlockNorm returns the L2 norm of block (i, j) — Eq. (3).
func (lg LayerGroups) BlockNorm(i, j int) float64 {
	s := 0.0
	w := lg.Param.W.Data
	lg.forSpans(i, j, func(lo, hi int) {
		for _, v := range w[lo:hi] {
			f := float64(v)
			s += f * f
		}
	})
	return math.Sqrt(s)
}

// BlockNorms returns the full n×n matrix of block norms.
func (lg LayerGroups) BlockNorms() [][]float64 {
	n := lg.Cores()
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
		for j := range out[i] {
			out[i][j] = lg.BlockNorm(i, j)
		}
	}
	return out
}

// UniformStrength returns the SS strength matrix: 1 everywhere.
func UniformStrength(n int) [][]float64 {
	s := make([][]float64, n)
	for i := range s {
		s[i] = make([]float64, n)
		for j := range s[i] {
			s[i][j] = 1
		}
	}
	return s
}

// DistanceStrength returns the SS_Mask strength matrix for the mesh:
// strength(i,j) ∝ hop distance(i,j), normalized so the matrix mean is
// 1 (the same total regularization pressure as UniformStrength,
// redistributed toward distant pairs). Diagonal blocks get 0 — data
// that stays on its own core costs nothing and is never pruned for
// communication's sake.
func DistanceStrength(m topology.Mesh) [][]float64 {
	n := m.Nodes()
	d := m.DistanceMatrix()
	total := 0
	for i := range d {
		for j := range d[i] {
			total += d[i][j]
		}
	}
	if total == 0 {
		return UniformStrength(n)
	}
	scale := float64(n*n) / float64(total)
	s := make([][]float64, n)
	for i := range s {
		s[i] = make([]float64, n)
		for j := range s[i] {
			s[i][j] = float64(d[i][j]) * scale
		}
	}
	return s
}

// GroupLasso is the structured regularizer of Eq. (1): it adds
// λ·Σ_l Σ_ij strength(i,j)·√|b|·‖W_b^l‖ to the objective. It
// implements nn.Regularizer.
type GroupLasso struct {
	Layers   []LayerGroups
	Strength [][]float64 // shared n×n strength matrix
	Lambda   float64
	normEps  float64
}

// NewGroupLasso creates the regularizer. strength must be n×n where n
// matches every layer's core count.
func NewGroupLasso(layers []LayerGroups, strength [][]float64, lambda float64) *GroupLasso {
	for _, lg := range layers {
		if lg.Cores() != len(strength) {
			panic(fmt.Sprintf("sparsity: layer %s has %d cores, strength matrix %d",
				lg.Name, lg.Cores(), len(strength)))
		}
	}
	return &GroupLasso{Layers: layers, Strength: strength, Lambda: lambda, normEps: 1e-8}
}

// Penalty implements nn.Regularizer. Block norms are computed in
// parallel; per-layer partial sums fold one block row at a time in
// fixed (i-ascending) order, so the result is identical at every
// worker count.
func (g *GroupLasso) Penalty() float64 {
	total := 0.0
	for _, lg := range g.Layers {
		n := lg.Cores()
		total += parallel.MapReduce(n*n, n, 0.0,
			func(lo, hi int) float64 {
				s := 0.0
				for b := lo; b < hi; b++ {
					i, j := b/n, b%n
					st := g.Strength[i][j]
					if st == 0 {
						continue
					}
					sz := lg.BlockSize(i, j)
					if sz == 0 {
						continue
					}
					s += g.Lambda * st * math.Sqrt(float64(sz)) * lg.BlockNorm(i, j)
				}
				return s
			},
			func(acc, v float64) float64 { return acc + v })
	}
	return total
}

// AddGrad implements nn.Regularizer: the (sub)gradient of the group
// Lasso term, λ·s_ij·√|b|·w/‖W_b‖, accumulated into each parameter's
// gradient buffer.
func (g *GroupLasso) AddGrad() {
	for _, lg := range g.Layers {
		lg := lg
		n := lg.Cores()
		w := lg.Param.W.Data
		gr := lg.Param.G.Data
		// Blocks partition the weight tensor, so each gradient element
		// gets exactly one accumulation: block order cannot matter.
		parallel.For(n*n, func(b int) {
			i, j := b/n, b%n
			st := g.Strength[i][j]
			if st == 0 {
				return
			}
			sz := lg.BlockSize(i, j)
			if sz == 0 {
				return
			}
			norm := lg.BlockNorm(i, j)
			if norm < g.normEps {
				return // subgradient 0 at the origin
			}
			coef := float32(g.Lambda * st * math.Sqrt(float64(sz)) / norm)
			lg.forSpans(i, j, func(lo, hi int) {
				gs, ws := gr[lo:hi], w[lo:hi]
				for idx := range gs {
					gs[idx] += coef * ws[idx]
				}
			})
		})
	}
}

// Threshold zeroes every block whose RMS weight magnitude fell below
// rel × the layer's overall RMS, and returns one BlockMask per layer
// (true = block survives). Safety rule: a destination core always
// keeps its strongest input block — pruning every block of a column
// would disconnect that core's output neurons entirely (dead classes
// in a classifier layer), which no amount of sparsity justifies. The
// pruning is applied in place to the network weights, so subsequent
// inference genuinely skips the eliminated connections.
func (g *GroupLasso) Threshold(rel float64) []partition.BlockMask {
	masks := make([]partition.BlockMask, len(g.Layers))
	for li, lg := range g.Layers {
		n := lg.Cores()
		layerRMS := rmsOf(lg.Param.W.Data)
		mask := make(partition.BlockMask, n)
		keep := make([][]bool, n) // keep[i][j], indexed like mask
		for i := 0; i < n; i++ {
			mask[i] = make([]bool, n)
			keep[i] = make([]bool, n)
		}
		// Pass 1: decide survivors; remember each column's strongest
		// block as a fallback. Columns touch disjoint keep entries, so
		// they evaluate in parallel.
		parallel.For(n, func(j int) {
			if lg.OutRanges[j].Len() == 0 {
				return
			}
			bestI, bestRMS := -1, -1.0
			colAlive := false
			for i := 0; i < n; i++ {
				sz := lg.BlockSize(i, j)
				if sz == 0 {
					continue
				}
				rms := lg.BlockNorm(i, j) / math.Sqrt(float64(sz))
				if rms > bestRMS {
					bestRMS, bestI = rms, i
				}
				if rms >= rel*layerRMS {
					keep[i][j] = true
					colAlive = true
				}
			}
			if !colAlive && bestI >= 0 {
				keep[bestI][j] = true
			}
		})
		// Pass 2: apply; blocks are disjoint weight ranges.
		w := lg.Param.W.Data
		parallel.For(n*n, func(b int) {
			i, j := b/n, b%n
			if lg.BlockSize(i, j) == 0 {
				return
			}
			if keep[i][j] {
				mask[i][j] = true
				return
			}
			lg.forSpans(i, j, func(lo, hi int) { clear(w[lo:hi]) })
		})
		masks[li] = mask
	}
	return masks
}

// PrunableGroups counts the blocks (across all regularized layers)
// whose RMS weight magnitude currently sits below rel × the layer's
// overall RMS — the blocks Threshold(rel) would zero, before its
// keep-strongest-per-column safety rule. Tracked per epoch, it shows
// group-Lasso pressure progressively collapsing block norms during
// sparsified training. Deterministic at every worker count (same fold
// discipline as Penalty).
func (g *GroupLasso) PrunableGroups(rel float64) int {
	total := 0
	for _, lg := range g.Layers {
		lg := lg
		n := lg.Cores()
		layerRMS := rmsOf(lg.Param.W.Data)
		total += parallel.MapReduce(n*n, n, 0,
			func(lo, hi int) int {
				c := 0
				for b := lo; b < hi; b++ {
					i, j := b/n, b%n
					sz := lg.BlockSize(i, j)
					if sz == 0 {
						continue
					}
					rms := lg.BlockNorm(i, j) / math.Sqrt(float64(sz))
					if rms < rel*layerRMS {
						c++
					}
				}
				return c
			},
			func(acc, v int) int { return acc + v })
	}
	return total
}

// GroupCount returns the total number of non-empty blocks across all
// regularized layers — the denominator for PrunableGroups.
func (g *GroupLasso) GroupCount() int {
	total := 0
	for _, lg := range g.Layers {
		n := lg.Cores()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if lg.BlockSize(i, j) > 0 {
					total++
				}
			}
		}
	}
	return total
}

// UnstructuredPrune zeroes the fraction frac of smallest-magnitude
// weights of the layer, regardless of block structure — the
// "non-structured sparse network" the paper contrasts its structured
// approach against (§IV.C.1: randomly distributed zeros are not
// hardware-friendly). Returns the number of weights zeroed.
func UnstructuredPrune(lg LayerGroups, frac float64) int {
	w := lg.Param.W.Data
	if frac <= 0 || len(w) == 0 {
		return 0
	}
	if frac > 1 {
		frac = 1
	}
	mags := make([]float64, len(w))
	for i, v := range w {
		mags[i] = math.Abs(float64(v))
	}
	sorted := append([]float64(nil), mags...)
	sort.Float64s(sorted)
	cut := sorted[int(float64(len(sorted)-1)*frac)]
	n := 0
	for i := range w {
		if mags[i] <= cut && n < int(frac*float64(len(w))) {
			w[i] = 0
			n++
		}
	}
	return n
}

// UnitTraffic computes the block mask at *input-unit* granularity:
// block (i, j) is active iff any weight connecting any of core i's
// input units to core j's outputs is nonzero. For block-structured
// zeros this equals the learned mask; for unstructured zeros it shows
// how little traffic random sparsity eliminates — a column only stops
// being transmitted when every one of its weights happens to be zero.
func UnitTraffic(lg LayerGroups) partition.BlockMask {
	n := lg.Cores()
	mask := make(partition.BlockMask, n)
	w := lg.Param.W.Data
	for i := 0; i < n; i++ {
		mask[i] = make([]bool, n)
		for j := 0; j < n; j++ {
			if lg.BlockSize(i, j) == 0 {
				continue
			}
			active := false
			lg.forSpans(i, j, func(lo, hi int) {
				if active {
					return
				}
				for _, v := range w[lo:hi] {
					if v != 0 {
						active = true
						break
					}
				}
			})
			mask[i][j] = active
		}
	}
	return mask
}

// Projector returns a function that zeroes every pruned block of
// every layer, given Threshold's masks (indexed like g.Layers). Used
// as an nn.Trainer AfterStep hook so fine-tuning after pruning keeps
// the eliminated blocks at exactly zero.
func (g *GroupLasso) Projector(masks []partition.BlockMask) func() {
	if len(masks) != len(g.Layers) {
		panic(fmt.Sprintf("sparsity: Projector got %d masks for %d layers", len(masks), len(g.Layers)))
	}
	return func() {
		for li, lg := range g.Layers {
			lg := lg
			m := masks[li]
			w := lg.Param.W.Data
			n := lg.Cores()
			// Pruned blocks are disjoint weight ranges; zero them in
			// parallel (this runs after every fine-tuning step).
			parallel.For(n*n, func(b int) {
				i, j := b/n, b%n
				if m[i][j] || lg.BlockSize(i, j) == 0 {
					return
				}
				lg.forSpans(i, j, func(lo, hi int) { clear(w[lo:hi]) })
			})
		}
	}
}

func rmsOf(w []float32) float64 {
	if len(w) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range w {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s / float64(len(w)))
}

// OccupancyString renders a block mask as the paper's Fig. 6(b)-style
// 0/1 grid (rows = destination core, columns = source core).
func OccupancyString(m partition.BlockMask) string {
	var b strings.Builder
	for j := range m {
		for i := range m {
			if i > 0 {
				b.WriteByte(' ')
			}
			if m[i][j] {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ForPlan builds the group structure of every regularized layer of a
// trained/trainable network according to plan. The first synaptic
// layer is skipped (its input is broadcast, so its blocks never cause
// traffic), as are layers whose partition gives a core no inputs or
// outputs. Grouped convolutions are rejected: the sparsified schemes
// apply to the unmodified dense topology.
func ForPlan(net *nn.Network, plan *partition.Plan, strength [][]float64, lambda float64) (*GroupLasso, error) {
	var synaptic []nn.Layer
	for _, l := range net.Layers {
		switch l.(type) {
		case *nn.Conv2D, *nn.FullyConnected:
			synaptic = append(synaptic, l)
		}
	}
	if len(synaptic) != len(plan.Layers) {
		return nil, fmt.Errorf("sparsity: network has %d synaptic layers, plan has %d",
			len(synaptic), len(plan.Layers))
	}
	var groups []LayerGroups
	for k := 1; k < len(synaptic); k++ {
		lp := plan.Layers[k]
		if lp.InRanges == nil {
			continue
		}
		switch t := synaptic[k].(type) {
		case *nn.Conv2D:
			if t.Groups() != 1 {
				return nil, fmt.Errorf("sparsity: %s is a grouped conv; sparsified schemes need the dense topology", t.Name())
			}
			g := t.Geom()
			groups = append(groups, NewLayerGroups(t.Name(), t.Weight(),
				lp.OutRanges, lp.InRanges, g.InC, g.KH, g.KW))
		case *nn.FullyConnected:
			in, _ := t.InOut()
			groups = append(groups, NewLayerGroups(t.Name(), t.Weight(),
				lp.OutRanges, lp.InRanges, in, 1, 1))
		}
	}
	return NewGroupLasso(groups, strength, lambda), nil
}

// MasksByLayer re-indexes Threshold's output to synaptic-layer
// indices of the plan: masks[k] is nil for unregularized layers (k=0)
// and the learned mask otherwise.
func MasksByLayer(g *GroupLasso, plan *partition.Plan, thresholded []partition.BlockMask) []partition.BlockMask {
	out := make([]partition.BlockMask, len(plan.Layers))
	li := 0
	for k := 1; k < len(plan.Layers) && li < len(thresholded); k++ {
		if plan.Layers[k].InRanges == nil {
			continue
		}
		if li < len(g.Layers) {
			out[k] = thresholded[li]
			li++
		}
	}
	return out
}
