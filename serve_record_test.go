// Serving-path determinism: a fixed request script replayed through
// the full serving layer — training, quantization, dispatch, batched
// pipelined simulation — must produce a byte-identical stable flight
// record, live-telemetry stream, and response logits at every host
// worker count. This is the serving companion of the live/quant record
// tests; the CI serve job additionally byte-compares records from real
// `l2s-serve -script` runs at -workers 1/2/7.
package learn2scale_test

import (
	"bytes"
	"context"
	"math"
	"testing"

	"learn2scale"
	"learn2scale/internal/obs"
	"learn2scale/internal/obs/live"
	"learn2scale/internal/parallel"
)

// serveScript is the fixed request script: every scheme, both
// precisions, multi-request batches and a singleton.
var serveScript = []learn2scale.ServeScriptStep{
	{Model: "baseline", Samples: []int{0, 1, 2}},
	{Model: "ssmask", Samples: []int{3, 4}},
	{Model: "ssmask", Precision: "int16", Samples: []int{3, 4}},
	{Model: "ss", Precision: "int16", Samples: []int{5}},
	{Model: "struct", Samples: []int{0, 5}},
}

// captureServe trains the serving pool and replays the script at the
// given worker count, returning the live JSONL stream, the stable
// flight record, and every response's logits as bit patterns. A
// non-nil traceBuf additionally attaches a stable-class request
// tracer streaming serve-trace JSONL into it — the purity test's
// with-tracing arm and the cross-worker trace-identity arm.
func captureServe(t *testing.T, workers string, traceBuf *bytes.Buffer) (stream, record []byte, logits [][]uint32) {
	t.Helper()
	t.Setenv(learn2scale.EnvWorkers, workers)
	reg := obs.New()
	var buf bytes.Buffer
	plane := live.New(live.Config{Out: &buf}) // Clock 0 → deterministic mode
	reg.SetTap(plane)
	parallel.SetObs(reg)
	defer parallel.SetObs(nil)

	spec := learn2scale.Table4Nets(learn2scale.Quick)[0] // MLP
	ds := learn2scale.MNISTLike(80, 40, 3)
	cfg := learn2scale.ServeConfig{Depth: 2, Sims: 1, Obs: reg}
	var sink *learn2scale.ServeTraceSink
	if traceBuf != nil {
		sink = learn2scale.NewServeTraceSink(traceBuf,
			learn2scale.ServeTraceOptions{Stable: true, Tool: "test"})
		cfg.Trace = sink
	}
	models, err := learn2scale.NewServeModels(cfg, spec, ds,
		[]learn2scale.Scheme{learn2scale.Baseline, learn2scale.StructureLevel, learn2scale.SS, learn2scale.SSMask},
		[]learn2scale.Precision{learn2scale.Float32, learn2scale.Int16},
		4, 3, 3)
	if err != nil {
		t.Fatalf("workers=%s: %v", workers, err)
	}
	srv, err := learn2scale.NewServer(cfg, models)
	if err != nil {
		t.Fatalf("workers=%s: %v", workers, err)
	}
	out, err := srv.RunScript(context.Background(), serveScript)
	if err != nil {
		t.Fatalf("workers=%s: %v", workers, err)
	}
	srv.Close()
	if sink != nil {
		if err := sink.Close(); err != nil {
			t.Fatalf("workers=%s: close trace sink: %v", workers, err)
		}
	}
	for _, step := range out {
		for _, resp := range step {
			bits := make([]uint32, len(resp.Logits))
			for i, v := range resp.Logits {
				bits[i] = math.Float32bits(v)
			}
			logits = append(logits, bits)
		}
	}
	if err := plane.Close(); err != nil {
		t.Fatalf("workers=%s: close plane: %v", workers, err)
	}
	var rec bytes.Buffer
	if err := reg.Record("test", map[string]string{"net": "mlp"}, false).WriteJSON(&rec); err != nil {
		t.Fatalf("workers=%s: %v", workers, err)
	}
	return buf.Bytes(), rec.Bytes(), logits
}

func TestServeRecordDeterministicAcrossWorkers(t *testing.T) {
	refStream, refRecord, refLogits := captureServe(t, "1", nil)
	if len(refStream) == 0 || len(refRecord) == 0 {
		t.Fatal("empty stream or record")
	}
	if len(refLogits) != 10 {
		t.Fatalf("script answered %d responses, want 10", len(refLogits))
	}

	// The serving path must emit its own metrics into the record …
	rec, err := obs.ReadRecord(bytes.NewReader(refRecord))
	if err != nil {
		t.Fatal(err)
	}
	wantCounters := map[string]int64{
		"serve.requests":  10,
		"serve.responses": 10,
		"serve.batches":   int64(len(serveScript)),
	}
	for _, c := range rec.Counters {
		if want, ok := wantCounters[c.Name]; ok {
			if c.Value != want {
				t.Errorf("record counter %s = %d, want %d", c.Name, c.Value, want)
			}
			delete(wantCounters, c.Name)
		}
		if c.Name == "serve.rejected" {
			t.Errorf("volatile counter %s leaked into the stable record", c.Name)
		}
	}
	for name := range wantCounters {
		t.Errorf("record is missing counter %s", name)
	}
	for _, h := range rec.Histograms {
		if h.Name == "serve.latency" {
			t.Error("volatile serve.latency leaked into the stable record")
		}
	}

	// … and a "serve.batch" window boundary per batch in the stream.
	snaps, err := live.ReadStream(bytes.NewReader(refStream))
	if err != nil {
		t.Fatalf("stream invalid: %v", err)
	}
	batchWindows := 0
	for _, sn := range snaps {
		if sn.Label == "serve.batch" {
			batchWindows++
		}
	}
	if batchWindows != len(serveScript) {
		t.Errorf("%d serve.batch windows, want %d", batchWindows, len(serveScript))
	}

	workerCounts := []string{"2", "7"}
	if testing.Short() {
		workerCounts = []string{"7"}
	}
	for _, workers := range workerCounts {
		stream, record, logits := captureServe(t, workers, nil)
		if !bytes.Equal(refStream, stream) {
			t.Errorf("live streams differ between workers=1 and workers=%s:\n--- workers=1\n%s\n--- workers=%s\n%s",
				workers, refStream, workers, stream)
		}
		if !bytes.Equal(refRecord, record) {
			t.Errorf("flight records differ between workers=1 and workers=%s", workers)
		}
		for r := range refLogits {
			for i := range refLogits[r] {
				if logits[r][i] != refLogits[r][i] {
					t.Fatalf("response %d logit %d: workers=%s %08x, workers=1 %08x",
						r, i, workers, logits[r][i], refLogits[r][i])
				}
			}
		}
	}
}
