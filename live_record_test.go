// Live-stream determinism: in deterministic mode the windowed
// telemetry stream admits only Stable-class updates, windows close at
// serial boundaries (epoch ends, simulation ends), and every window
// aggregate is order-independent — so the JSONL stream a full
// train-then-simulate session emits must be byte-identical at every
// host worker count, for every parallelization scheme. This is the
// live-plane companion of TestFlightRecordDeterministicAcrossWorkers.
//
// The tap must also be a pure observer: attaching a plane must not
// change the flight record the session would have produced without
// one.
package learn2scale_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"learn2scale"
	"learn2scale/internal/obs"
	"learn2scale/internal/obs/live"
	"learn2scale/internal/parallel"
)

// captureLive runs the golden session at the given worker count with
// a deterministic live plane tapped into the registry and returns the
// JSONL stream bytes plus the stable flight-record bytes.
func captureLive(t *testing.T, scheme learn2scale.Scheme, workers string) (stream, record []byte) {
	t.Helper()
	t.Setenv(learn2scale.EnvWorkers, workers)
	reg := obs.New()
	var buf bytes.Buffer
	plane := live.New(live.Config{Out: &buf}) // Clock 0 → deterministic mode
	reg.SetTap(plane)
	parallel.SetObs(reg)
	defer parallel.SetObs(nil)

	ds := learn2scale.MNISTLike(80, 40, 3)
	opt := learn2scale.DefaultTrainOptions(4)
	opt.SGD.Epochs = 3
	opt.SGD.LearningRate = 0.03
	opt.Obs = reg
	m, err := learn2scale.Train(scheme, learn2scale.MLP(), ds, opt)
	if err != nil {
		t.Fatalf("workers=%s: %v", workers, err)
	}
	if _, err := m.Simulate(); err != nil {
		t.Fatalf("workers=%s: %v", workers, err)
	}
	if err := plane.Close(); err != nil {
		t.Fatalf("workers=%s: close plane: %v", workers, err)
	}

	var rec bytes.Buffer
	if err := reg.Record("test", map[string]string{"net": "mlp"}, false).WriteJSON(&rec); err != nil {
		t.Fatalf("workers=%s: %v", workers, err)
	}
	return buf.Bytes(), rec.Bytes()
}

func TestLiveStreamDeterministicAcrossWorkers(t *testing.T) {
	schemes := map[string]learn2scale.Scheme{
		"baseline": learn2scale.Baseline,
		"struct":   learn2scale.StructureLevel,
		"ss":       learn2scale.SS,
		"ssmask":   learn2scale.SSMask,
	}
	workerCounts := []string{"2", "7"}
	if testing.Short() {
		// The full matrix is 12 train+simulate sessions — too slow
		// under -race -short (the race CI budget). One scheme at two
		// worker counts still exercises the whole tap path; the full
		// sweep runs in the regular tier-1 `go test ./...`.
		schemes = map[string]learn2scale.Scheme{"ssmask": learn2scale.SSMask}
		workerCounts = []string{"7"}
	}
	for name, scheme := range schemes {
		t.Run(name, func(t *testing.T) {
			ref, _ := captureLive(t, scheme, "1")
			if len(ref) == 0 {
				t.Fatal("empty live stream")
			}
			snaps, err := live.ReadStream(bytes.NewReader(ref))
			if err != nil {
				t.Fatalf("stream invalid: %v", err)
			}
			// 3 epoch windows + at least one simulation window + the
			// final catch-all from Close.
			if len(snaps) < 5 {
				t.Errorf("only %d windows in golden-session stream", len(snaps))
			}
			for _, workers := range workerCounts {
				got, _ := captureLive(t, scheme, workers)
				if !bytes.Equal(ref, got) {
					t.Errorf("live streams differ between workers=1 and workers=%s:\n--- workers=1\n%s\n--- workers=%s\n%s",
						workers, ref, workers, got)
				}
			}
		})
	}
}

// TestTapIsPureObserver runs the golden session with and without a
// live plane attached: the stable flight records must match byte for
// byte — tapping metrics must never perturb what they record.
func TestTapIsPureObserver(t *testing.T) {
	_, tapped := captureLive(t, learn2scale.SSMask, "1")
	untapped, _ := captureRecord(t, "1")
	// captureRecord labels the record with scheme=ssmask; captureLive
	// omits that label, so compare snapshots, not envelope metadata.
	recA, err := obs.ReadRecord(bytes.NewReader(tapped))
	if err != nil {
		t.Fatal(err)
	}
	recB, err := obs.ReadRecord(bytes.NewReader(untapped))
	if err != nil {
		t.Fatal(err)
	}
	a, err := json.Marshal(recA.Snapshot)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(recB.Snapshot)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("attaching a live plane changed the flight record:\n--- tapped\n%s\n--- untapped\n%s", a, b)
	}
}
