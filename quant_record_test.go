// Quantized-path determinism: the int16 inference fast path reduces
// with int32 wraparound adds (associative and commutative), so the
// quantized logits, the quantized accuracy, and the flight record of a
// full train-quantize-simulate session — including the
// quant.accuracy_delta gauge the CI health gate reads — must be
// byte-identical at every host worker count.
package learn2scale_test

import (
	"bytes"
	"math"
	"testing"

	"learn2scale"
	"learn2scale/internal/obs"
	"learn2scale/internal/parallel"
)

// captureQuant runs the golden quantization session at the given worker
// count — train SS_Mask on the MLP, quantize to int16, simulate — and
// returns the flight-record bytes plus the quantized logits of every
// test input.
func captureQuant(t *testing.T, workers string) ([]byte, []uint32) {
	t.Helper()
	t.Setenv(learn2scale.EnvWorkers, workers)

	reg := obs.New()
	parallel.SetObs(reg)
	defer parallel.SetObs(nil)

	ds := learn2scale.MNISTLike(80, 40, 3)
	opt := learn2scale.DefaultTrainOptions(4)
	opt.SGD.Epochs = 3
	opt.SGD.LearningRate = 0.03
	opt.Obs = reg
	m, err := learn2scale.Train(learn2scale.SSMask, learn2scale.MLP(), ds, opt)
	if err != nil {
		t.Fatalf("workers=%s: %v", workers, err)
	}
	m.Quantize(ds, learn2scale.CalibConfig{Method: learn2scale.CalibMaxAbs})
	if _, err := m.Simulate(); err != nil {
		t.Fatalf("workers=%s: %v", workers, err)
	}

	var logits []uint32
	for _, x := range ds.TestX {
		for _, v := range m.QNet.Forward(x).Data {
			logits = append(logits, math.Float32bits(v))
		}
	}
	var ob bytes.Buffer
	meta := map[string]string{"net": "mlp", "scheme": "ssmask", "precision": "int16"}
	if err := reg.Record("test", meta, false).WriteJSON(&ob); err != nil {
		t.Fatalf("workers=%s: %v", workers, err)
	}
	return ob.Bytes(), logits
}

func TestQuantRecordsByteIdenticalAcrossWorkers(t *testing.T) {
	wantObs, wantLogits := captureQuant(t, "1")
	for _, workers := range []string{"2", "7"} {
		gotObs, gotLogits := captureQuant(t, workers)
		if !bytes.Equal(wantObs, gotObs) {
			t.Errorf("flight records differ between workers=1 and workers=%s", workers)
		}
		if len(gotLogits) != len(wantLogits) {
			t.Fatalf("logit count differs between workers=1 and workers=%s", workers)
		}
		for i := range wantLogits {
			if gotLogits[i] != wantLogits[i] {
				t.Errorf("quantized logit %d differs between workers=1 and workers=%s: %x vs %x",
					i, workers, wantLogits[i], gotLogits[i])
				break
			}
		}
	}
}
