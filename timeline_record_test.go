// Timeline determinism: every stamp in a timeline record is a
// simulated cycle, so the trace of a full train-then-simulate session
// must serialize to byte-identical records at every host worker count
// — the same golden-session harness as the flight-record and
// end-to-end determinism suites, applied to the cycle-accurate tracer.
// Two properties ride along: attaching a sink must not change the
// simulation's Report, and a fault-free session's timeline must
// contain no retransmission events.
package learn2scale_test

import (
	"bytes"
	"reflect"
	"testing"

	"learn2scale"
	"learn2scale/internal/cmp"
	"learn2scale/internal/timeline"
)

// captureTimeline runs the golden session at the given worker count
// with a timeline sink attached to the simulation and returns the
// record bytes plus the simulation report.
func captureTimeline(t *testing.T, workers string) ([]byte, cmp.Report) {
	t.Helper()
	t.Setenv(learn2scale.EnvWorkers, workers)

	ds := learn2scale.MNISTLike(80, 40, 3)
	opt := learn2scale.DefaultTrainOptions(4)
	opt.SGD.Epochs = 3
	opt.SGD.LearningRate = 0.03
	m, err := learn2scale.Train(learn2scale.SSMask, learn2scale.MLP(), ds, opt)
	if err != nil {
		t.Fatalf("workers=%s: %v", workers, err)
	}
	sink := learn2scale.NewTimeline()
	rep, err := m.SimulateTimeline(sink, 0)
	if err != nil {
		t.Fatalf("workers=%s: %v", workers, err)
	}

	var buf bytes.Buffer
	if err := sink.WriteRecord(&buf, "test", map[string]string{"net": "mlp", "scheme": "ssmask"}); err != nil {
		t.Fatalf("workers=%s: %v", workers, err)
	}
	return buf.Bytes(), rep
}

func TestTimelineRecordByteIdenticalAcrossWorkers(t *testing.T) {
	want, _ := captureTimeline(t, "1")
	for _, workers := range []string{"2", "7"} {
		got, _ := captureTimeline(t, workers)
		if !bytes.Equal(want, got) {
			t.Errorf("timeline records differ between workers=1 and workers=%s", workers)
		}
	}
}

// Attaching a timeline sink must be pure observation: the Report of a
// traced simulation is identical to an untraced one, and a fault-free
// session's timeline carries no retransmission or loss events.
func TestTimelineSinkPureObservation(t *testing.T) {
	t.Setenv(learn2scale.EnvWorkers, "2")

	ds := learn2scale.MNISTLike(80, 40, 3)
	opt := learn2scale.DefaultTrainOptions(4)
	opt.SGD.Epochs = 3
	opt.SGD.LearningRate = 0.03
	m, err := learn2scale.Train(learn2scale.SSMask, learn2scale.MLP(), ds, opt)
	if err != nil {
		t.Fatal(err)
	}

	base, err := m.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	sink := learn2scale.NewTimeline()
	traced, err := m.SimulateTimeline(sink, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, traced) {
		t.Errorf("timeline sink changed the simulation report:\nbase   %+v\ntraced %+v", base, traced)
	}

	var buf bytes.Buffer
	if err := sink.WriteRecord(&buf, "test", nil); err != nil {
		t.Fatal(err)
	}
	tl, err := learn2scale.ReadTimeline(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, err := learn2scale.AnalyzeTimeline(tl)
	if err != nil {
		t.Fatal(err)
	}
	if a.Retransmits != 0 || a.LostPackets != 0 {
		t.Errorf("fault-free timeline has %d retransmits, %d lost packets", a.Retransmits, a.LostPackets)
	}
	if a.Overall.Packets == 0 || a.ComputeCycles == 0 {
		t.Errorf("timeline empty: %d packets, %d compute cycles", a.Overall.Packets, a.ComputeCycles)
	}
	// One section per simulated layer transition, labeled and in order.
	if len(a.Sections) == 0 {
		t.Fatal("no timeline sections")
	}
	for i, sec := range a.Sections {
		if sec.Index != i {
			t.Errorf("section %d has index %d", i, sec.Index)
		}
	}
	var _ *timeline.Analysis = a // facade returns the internal analyzer type
}
